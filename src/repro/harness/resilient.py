"""Fault-tolerant execution of sweep-style experiments.

Every figure/table of the paper is a sweep over independent
(workload, predictor-config) **cells**.  This module runs such sweeps
through a supervisor that survives the failure modes long campaigns
actually hit:

* a cell crashes -> bounded **retry** with exponential backoff and
  deterministic jitter (transient failures only; deterministic
  exceptions fail fast);
* a cell hangs -> a per-cell wall-clock **timeout**.  With worker
  subprocesses (``workers >= 1``, via
  ``concurrent.futures.ProcessPoolExecutor``) an overdue worker is
  reaped (killed) and the pool rebuilt; in-process execution
  (``workers == 0``) arms a *cooperative* deadline that the timing
  model polls via its interrupt hook
  (:class:`repro.pipeline.core.SimulationInterrupted`);
* the whole campaign is killed -> every finished cell was already
  durably appended to a :class:`repro.harness.journal.Journal`, so a
  relaunch with ``resume=True`` skips completed cells and reproduces
  the uninterrupted result exactly (fresh results are JSON
  round-tripped before aggregation so replayed and recomputed values
  are byte-identical);
* some cells fail permanently -> the sweep still returns every
  successful cell plus a structured failure report instead of raising.

When ``REPRO_RESULTS_DB_DIR`` is set, the supervisor also consults the
content-addressed results database (:mod:`repro.harness.resultsdb`)
before dispatching each cell and writes fresh results back on success,
so identical cells are reused *across* campaigns and processes.
Journal replay still wins inside a campaign; database hits are
journaled as ``cached`` cells so ``resume`` stays byte-identical.

Fault injection (for tests and drills) is driven by the
``REPRO_FAULT_PLAN`` environment variable -- see
:func:`parse_fault_plan`.
"""

from __future__ import annotations

import fnmatch
import hashlib
import importlib
import json
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.harness.journal import Journal, stable_digest
from repro.harness.resultsdb import ResultsDb, active_db

#: Environment variable holding the fault plan (see :func:`parse_fault_plan`).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Hard hang duration (seconds) for the ``hang`` fault action.
_HANG_SECONDS = 3600.0


class TransientCellError(RuntimeError):
    """A retryable cell failure (infrastructure, not logic)."""


class CellTimeout(TransientCellError):
    """A cell exceeded its wall-clock budget."""


class FaultInjected(TransientCellError):
    """A failure injected by the ``REPRO_FAULT_PLAN`` fault plan."""


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FaultRule:
    """One clause of a fault plan.

    ``pattern`` is an ``fnmatch`` glob over cell ids; ``action`` is one
    of ``fail`` (raise :class:`FaultInjected`), ``hang`` (sleep far past
    any sane timeout), ``crash`` (``os._exit`` -- kills the worker, or
    the whole campaign when inline), or ``corrupt-journal`` (tear the
    cell's journal record mid-write).  The rule applies while the cell's
    attempt number is below ``count`` -- ``count=1`` is "fail once,
    then succeed", the canonical transient fault.
    """

    pattern: str
    action: str
    count: int = 1


_ACTIONS = ("fail", "hang", "crash", "corrupt-journal")

# True while the supervisor is executing cells in-process; lets the
# ``hang`` action honor the cooperative deadline instead of deadlocking
# the campaign (a subprocess hang is reaped by the supervisor instead).
_INLINE = False

# Cooperative deadline (time.monotonic() timestamp) for the cell
# currently executing in *this* process; see :func:`cooperative_deadline`.
_DEADLINE: float | None = None


def parse_fault_plan(text: str | None) -> tuple[FaultRule, ...]:
    """Parse a fault plan like ``"fig5/*:fail;table6/512/*:hang:2"``.

    Clauses are ``pattern:action[:count]`` separated by ``;``.  Unknown
    actions or malformed counts raise ``ValueError`` -- a fault drill
    with a typo'd plan should fail loudly, not silently run clean.
    """
    rules = []
    for clause in (text or "").split(";"):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.rsplit(":", 2)
        if len(parts) >= 2 and parts[-1].isdigit() and parts[-2] in _ACTIONS:
            pattern = clause[: -(len(parts[-2]) + len(parts[-1]) + 2)]
            action, count = parts[-2], int(parts[-1])
        elif len(parts) >= 2 and parts[-1] in _ACTIONS:
            pattern = clause[: -(len(parts[-1]) + 1)]
            action, count = parts[-1], 1
        else:
            raise ValueError(
                f"bad fault clause {clause!r}; expected pattern:action[:count] "
                f"with action in {_ACTIONS}"
            )
        rules.append(FaultRule(pattern=pattern, action=action, count=count))
    return tuple(rules)


def _plan_from_env() -> tuple[FaultRule, ...]:
    return parse_fault_plan(os.environ.get(FAULT_PLAN_ENV))


def _matching_rule(
    rules: Sequence[FaultRule], cell_id: str, attempt: int, action: str
) -> FaultRule | None:
    for rule in rules:
        if (
            rule.action == action
            and attempt < rule.count
            and fnmatch.fnmatchcase(cell_id, rule.pattern)
        ):
            return rule
    return None


def _maybe_inject(cell_id: str, attempt: int) -> None:
    """Apply any matching execution-side fault before running the cell."""
    rules = _plan_from_env()
    if _matching_rule(rules, cell_id, attempt, "crash"):
        os._exit(70)
    if _matching_rule(rules, cell_id, attempt, "fail"):
        raise FaultInjected(
            f"injected failure for cell {cell_id!r} (attempt {attempt})"
        )
    if _matching_rule(rules, cell_id, attempt, "hang"):
        end = time.monotonic() + _HANG_SECONDS
        while time.monotonic() < end:
            time.sleep(0.02)
            deadline = _DEADLINE
            if _INLINE and deadline is not None and time.monotonic() >= deadline:
                raise CellTimeout(
                    f"cell {cell_id!r} hit its cooperative deadline while "
                    "hanging (injected)"
                )


def cooperative_deadline() -> float | None:
    """The running cell's wall-clock deadline (``time.monotonic()``).

    Cell functions that can take long should poll this (directly or via
    the pipeline's interrupt hook) and raise :class:`CellTimeout` when
    exceeded; it is how in-process (``workers == 0``) execution enforces
    ``timeout`` without subprocesses.  ``None`` means no deadline.
    """
    return _DEADLINE


# ----------------------------------------------------------------------
# Cells and policies
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Cell:
    """One independent unit of a sweep.

    ``fn`` is a ``"package.module:function"`` reference resolved inside
    the worker (so cells stay picklable and journal-stable); the
    function receives ``spec`` as its single argument and must return a
    JSON-serializable value.  ``id`` must be unique within the sweep
    and stable across runs -- it keys journal replay.
    """

    id: str
    fn: str
    spec: Any = None

    def digest(self) -> str:
        """Stable digest of the cell's work (fn + spec), for campaigns."""
        return stable_digest({"fn": self.fn, "spec": self.spec})


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    Only *transient* failures (:class:`TransientCellError`, timeouts,
    dead workers) are retried; deterministic exceptions from the cell
    function fail immediately unless ``retry_all`` is set.  Jitter is
    derived from the (cell id, attempt) pair, not a live RNG, so a
    resumed campaign backs off identically to the original.
    """

    max_retries: int = 2
    backoff: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.5
    retry_all: bool = False

    def delay(self, cell_id: str, attempt: int) -> float:
        """Backoff before retrying ``cell_id`` after failed ``attempt``."""
        digest = hashlib.sha256(f"{cell_id}/{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:4], "big") / 2**32
        return self.backoff * self.backoff_factor**attempt * (1.0 + self.jitter * unit)

    def is_transient(self, exc: BaseException) -> bool:
        """Whether ``exc`` counts as transient (and is thus retryable)."""
        if isinstance(exc, (TransientCellError, BrokenProcessPool)):
            return True
        return self.retry_all and isinstance(exc, Exception)


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a sweep executes: workers, timeout, retries, journaling.

    ``workers == 0`` (the default) runs cells in-process -- same
    determinism and per-process caches as the historical inline loops,
    with *cooperative* timeouts only.  ``workers >= 1`` isolates cells
    in subprocesses where hangs and crashes cannot take down the
    campaign.  ``journal_path`` enables crash-safe journaling;
    ``resume`` replays completed cells from it.
    """

    workers: int = 0
    timeout: float | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    journal_path: str | None = None
    resume: bool = False
    progress: Callable[["CellOutcome", int, int], None] | None = None


@dataclass
class CellOutcome:
    """Terminal state of one cell after the sweep finishes."""

    id: str
    status: str  #: ``ok``, ``failed``, or ``cached`` (journal or results DB)
    value: Any = None
    attempts: int = 0
    elapsed: float = 0.0
    error: str | None = None
    source: str = "fresh"  #: ``fresh``, ``journal``, or ``db``


@dataclass
class DbUsage:
    """Results-database effectiveness counters for one sweep (or totals).

    ``lookups``/``hits`` count database consultations for cells not
    already satisfied by journal replay; ``journal_replayed`` counts
    cells the journal satisfied first (never sent to the database);
    ``computed`` counts cells that actually ran; ``stored`` counts
    successful write-backs.
    """

    lookups: int = 0
    hits: int = 0
    computed: int = 0
    journal_replayed: int = 0
    stored: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of database lookups that hit (0.0 when none)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def add(self, other: "DbUsage") -> None:
        """Accumulate ``other``'s counters into this instance."""
        self.lookups += other.lookups
        self.hits += other.hits
        self.computed += other.computed
        self.journal_replayed += other.journal_replayed
        self.stored += other.stored

    def as_dict(self) -> dict:
        """JSON-friendly snapshot including the derived hit rate."""
        return {
            "lookups": self.lookups, "hits": self.hits,
            "computed": self.computed,
            "journal_replayed": self.journal_replayed,
            "stored": self.stored, "hit_rate": round(self.hit_rate, 4),
        }


# Process-wide accumulation of every sweep's database usage, for the
# CLI's end-of-command summary line (a command may run many sweeps).
_DB_TOTALS = DbUsage()


def db_usage_totals() -> DbUsage:
    """Process-wide results-database usage accumulated across sweeps."""
    return _DB_TOTALS


def reset_db_usage_totals() -> None:
    """Zero the process-wide usage totals (tests, ``clear_caches``)."""
    global _DB_TOTALS
    _DB_TOTALS = DbUsage()


@dataclass
class SweepReport:
    """Everything a sweep produced: per-cell outcomes plus failure roll-up."""

    outcomes: dict[str, CellOutcome]
    db_usage: DbUsage | None = None  #: set when a results DB was active

    def value(self, cell_id: str, default: Any = None) -> Any:
        """The cell's value, or ``default`` if it failed or is unknown."""
        outcome = self.outcomes.get(cell_id)
        if outcome is None or outcome.status == "failed":
            return default
        return outcome.value

    def values(self) -> dict[str, Any]:
        """Values of all successful cells, keyed by cell id."""
        return {
            cid: o.value
            for cid, o in self.outcomes.items()
            if o.status != "failed"
        }

    @property
    def failures(self) -> list[CellOutcome]:
        """Outcomes of terminally failed cells, in sweep order."""
        return [o for o in self.outcomes.values() if o.status == "failed"]

    @property
    def ok(self) -> bool:
        """True when every cell completed (fresh or from the journal)."""
        return not self.failures

    def failure_summary(self) -> dict:
        """A JSON-friendly report of what failed and how."""
        return {
            "failed_cells": len(self.failures),
            "total_cells": len(self.outcomes),
            "cells": [
                {"id": o.id, "error": o.error, "attempts": o.attempts}
                for o in self.failures
            ],
        }


# ----------------------------------------------------------------------
# Ambient policy (set by the CLI, consulted by experiment sweeps)
# ----------------------------------------------------------------------

_POLICY = ExecutionPolicy()


def current_policy() -> ExecutionPolicy:
    """The ambient :class:`ExecutionPolicy` experiment sweeps run under."""
    return _POLICY


@contextmanager
def use_policy(policy: ExecutionPolicy) -> Iterator[ExecutionPolicy]:
    """Temporarily install ``policy`` as the ambient execution policy."""
    global _POLICY
    previous = _POLICY
    _POLICY = policy
    try:
        yield policy
    finally:
        _POLICY = previous


def sweep(cells: Sequence[Cell]) -> SweepReport:
    """Run ``cells`` under the ambient policy (what experiments call)."""
    return run_cells(cells, current_policy())


def attach_failures(payload: dict, report: SweepReport) -> dict:
    """Graft a sweep's failure summary onto an experiment result dict."""
    if not report.ok:
        payload["failures"] = report.failure_summary()
    return payload


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

def _resolve(fn_path: str) -> Callable[[Any], Any]:
    module_name, sep, qualname = fn_path.partition(":")
    if not sep or not qualname:
        raise ValueError(
            f"cell fn {fn_path!r} must look like 'package.module:function'"
        )
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def _execute_cell(
    fn_path: str, spec: Any, cell_id: str, attempt: int, deadline: float | None
) -> Any:
    """Run one cell attempt (entry point both inline and in workers)."""
    global _DEADLINE
    _DEADLINE = deadline
    try:
        _maybe_inject(cell_id, attempt)
        return _resolve(fn_path)(spec)
    finally:
        _DEADLINE = None


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------

def run_cells(
    cells: Sequence[Cell], policy: ExecutionPolicy | None = None
) -> SweepReport:
    """Execute a sweep of cells under ``policy`` and report every outcome.

    Never raises for cell-level failures: failed cells appear in the
    report's :attr:`SweepReport.failures` and everything else completes.
    Raises :class:`repro.harness.journal.JournalError` when asked to
    resume from a journal that belongs to a different sweep.
    """
    policy = policy or current_policy()
    cells = list(cells)
    ids = [c.id for c in cells]
    if len(set(ids)) != len(ids):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise ValueError(f"duplicate cell ids in sweep: {dupes}")

    outcomes: dict[str, CellOutcome] = {}
    journal: Journal | None = None
    pending = cells
    if policy.journal_path:
        campaign = stable_digest(sorted((c.id, c.digest()) for c in cells))
        journal = Journal(policy.journal_path)
        if policy.resume and journal.path.exists():
            completed = journal.load_completed(campaign)
            for cell in cells:
                if cell.id in completed:
                    outcomes[cell.id] = CellOutcome(
                        id=cell.id, status="cached",
                        value=completed[cell.id], source="journal",
                    )
            pending = [c for c in cells if c.id not in outcomes]
            if policy.progress is not None:
                done = 0
                for cell in cells:
                    if cell.id in outcomes:
                        done += 1
                        policy.progress(outcomes[cell.id], done, len(cells))
            journal.open_append()
            journal.append({
                "type": "campaign", "campaign": campaign,
                "cells": len(cells), "resumed": True,
                "replayed": len(outcomes),
            })
        else:
            journal.start({
                "type": "campaign", "campaign": campaign, "cells": len(cells),
            })

    db = active_db()
    usage = DbUsage(journal_replayed=len(outcomes))
    if db is not None and pending:
        # Consult the cross-campaign results DB for whatever the
        # journal didn't satisfy; hits are journaled as ``cached``
        # cells so a later resume replays them identically.
        still_pending = []
        for cell in pending:
            usage.lookups += 1
            hit, value = db.lookup_cell(cell)
            if hit:
                usage.hits += 1
                _record_outcome(outcomes, journal, policy, CellOutcome(
                    id=cell.id, status="cached", value=value, source="db",
                ), len(cells))
            else:
                still_pending.append(cell)
        pending = still_pending

    try:
        if policy.workers and policy.workers > 0:
            _run_pool(pending, policy, outcomes, journal, total=len(cells),
                      db=db, usage=usage)
        else:
            _run_inline(pending, policy, outcomes, journal, total=len(cells),
                        db=db, usage=usage)
    finally:
        if journal is not None:
            journal.close()
        if db is not None:
            _DB_TOTALS.add(usage)

    return SweepReport(
        outcomes={c.id: outcomes[c.id] for c in cells if c.id in outcomes},
        db_usage=usage if db is not None else None,
    )


def _record_outcome(
    outcomes: dict,
    journal: Journal | None,
    policy: ExecutionPolicy,
    outcome: CellOutcome,
    total: int,
) -> None:
    outcomes[outcome.id] = outcome
    if journal is not None:
        record = {
            "type": "cell", "id": outcome.id, "status": outcome.status,
            "attempt": outcome.attempts, "elapsed": round(outcome.elapsed, 6),
        }
        if outcome.status in ("ok", "cached"):
            record["value"] = outcome.value
        else:
            record["error"] = outcome.error
        rules = _plan_from_env()
        if _matching_rule(rules, outcome.id, 0, "corrupt-journal") and not getattr(
            journal, "_corrupted_once", False
        ):
            journal._corrupted_once = True
            journal.append_corrupted(record)
        else:
            journal.append(record)
    if policy.progress is not None:
        policy.progress(outcome, len(outcomes), total)


def _journal_retry(
    journal: Journal | None, cell: Cell, attempt: int, error: str, delay: float
) -> None:
    if journal is not None:
        journal.append({
            "type": "retry", "id": cell.id, "attempt": attempt,
            "error": error, "delay": round(delay, 6),
        })


def _normalize(value: Any) -> Any:
    # JSON round-trip fresh results so they are byte-identical to
    # journal-replayed ones (tuples become lists, NaN/Inf rejected).
    return json.loads(json.dumps(value, default=str))


def _complete_fresh(
    outcomes: dict,
    journal: Journal | None,
    policy: ExecutionPolicy,
    cell: Cell,
    value: Any,
    attempts: int,
    elapsed: float,
    total: int,
    db: ResultsDb | None,
    usage: DbUsage,
) -> None:
    """Record a freshly computed cell and write it back to the DB."""
    normalized = _normalize(value)
    usage.computed += 1
    if db is not None and db.store_cell(cell, normalized):
        usage.stored += 1
    _record_outcome(outcomes, journal, policy, CellOutcome(
        id=cell.id, status="ok", value=normalized,
        attempts=attempts, elapsed=elapsed,
    ), total)


def _run_inline(
    pending: Sequence[Cell],
    policy: ExecutionPolicy,
    outcomes: dict,
    journal: Journal | None,
    total: int,
    db: ResultsDb | None = None,
    usage: DbUsage | None = None,
) -> None:
    global _INLINE
    usage = usage if usage is not None else DbUsage()
    for cell in pending:
        attempt = 0
        started_total = time.monotonic()
        while True:
            deadline = (
                time.monotonic() + policy.timeout if policy.timeout else None
            )
            _INLINE = True
            try:
                value = _execute_cell(cell.fn, cell.spec, cell.id, attempt, deadline)
            except BaseException as exc:
                _INLINE = False
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                transient = policy.retry.is_transient(exc)
                error = f"{type(exc).__name__}: {exc}"
                if transient and attempt < policy.retry.max_retries:
                    delay = policy.retry.delay(cell.id, attempt)
                    _journal_retry(journal, cell, attempt, error, delay)
                    time.sleep(delay)
                    attempt += 1
                    continue
                _record_outcome(outcomes, journal, policy, CellOutcome(
                    id=cell.id, status="failed", attempts=attempt + 1,
                    elapsed=time.monotonic() - started_total, error=error,
                ), total)
                break
            else:
                _INLINE = False
                _complete_fresh(
                    outcomes, journal, policy, cell, value, attempt + 1,
                    time.monotonic() - started_total, total, db, usage,
                )
                break


#: Cell ``fn`` dotted path -> hook called once in the supervisor with
#: the pending cells' specs before a worker pool starts.  Lets cell
#: providers publish shared state to process-visible caches (e.g. the
#: on-disk trace store) so N workers don't each redo the same setup.
_PREWARM_HOOKS: dict[str, Callable[[list], None]] = {}


def register_prewarm(fn_path: str, hook: Callable[[list], None]) -> None:
    """Register ``hook`` to pre-warm before pool runs of ``fn_path`` cells.

    ``hook`` receives the list of specs of the pending cells whose
    ``fn`` matches.  Hooks are best-effort: they run once in the
    supervisor process and any exception is swallowed (pre-warming is
    an optimization; the workers can always fall back to doing the
    work themselves).
    """
    _PREWARM_HOOKS[fn_path] = hook


def _prewarm(pending: Sequence[Cell]) -> None:
    """Run registered pre-warm hooks for a pool sweep's pending cells."""
    by_fn: dict[str, list] = {}
    for cell in pending:
        if cell.fn in _PREWARM_HOOKS:
            by_fn.setdefault(cell.fn, []).append(cell.spec)
    for fn_path, specs in by_fn.items():
        try:
            _PREWARM_HOOKS[fn_path](specs)
        except Exception:
            pass


def _kill_pool(executor: ProcessPoolExecutor) -> None:
    """Forcefully stop a pool, SIGKILLing any (possibly hung) workers."""
    processes = list(getattr(executor, "_processes", {}).values())
    for process in processes:
        try:
            process.kill()
        except (OSError, AttributeError):
            pass
    executor.shutdown(wait=False, cancel_futures=True)


def _run_pool(
    pending: Sequence[Cell],
    policy: ExecutionPolicy,
    outcomes: dict,
    journal: Journal | None,
    total: int,
    db: ResultsDb | None = None,
    usage: DbUsage | None = None,
) -> None:
    usage = usage if usage is not None else DbUsage()
    queue: deque[tuple[Cell, int, float]] = deque(
        (cell, 0, 0.0) for cell in pending
    )  # (cell, attempt, not-before)
    _prewarm(pending)
    first_started: dict[str, float] = {}
    executor = ProcessPoolExecutor(max_workers=policy.workers)
    inflight: dict = {}  # future -> (cell, attempt, deadline)

    def terminal(cell: Cell, attempt: int, error: str) -> None:
        _record_outcome(outcomes, journal, policy, CellOutcome(
            id=cell.id, status="failed", attempts=attempt + 1,
            elapsed=time.monotonic() - first_started.get(cell.id, time.monotonic()),
            error=error,
        ), total)

    def failed(cell: Cell, attempt: int, exc_or_msg, transient: bool) -> None:
        error = (
            exc_or_msg if isinstance(exc_or_msg, str)
            else f"{type(exc_or_msg).__name__}: {exc_or_msg}"
        )
        if transient and attempt < policy.retry.max_retries:
            delay = policy.retry.delay(cell.id, attempt)
            _journal_retry(journal, cell, attempt, error, delay)
            queue.append((cell, attempt + 1, time.monotonic() + delay))
        else:
            terminal(cell, attempt, error)

    try:
        while queue or inflight:
            now = time.monotonic()
            # Submit ready work up to pool capacity.
            blocked_until: float | None = None
            for _ in range(len(queue)):
                if len(inflight) >= policy.workers:
                    break
                cell, attempt, not_before = queue.popleft()
                if not_before > now:
                    queue.append((cell, attempt, not_before))
                    blocked_until = (
                        not_before if blocked_until is None
                        else min(blocked_until, not_before)
                    )
                    continue
                first_started.setdefault(cell.id, now)
                deadline = now + policy.timeout if policy.timeout else None
                future = executor.submit(
                    _execute_cell, cell.fn, cell.spec, cell.id, attempt, deadline
                )
                inflight[future] = (cell, attempt, deadline)
            if not inflight:
                if blocked_until is not None:
                    time.sleep(max(0.0, blocked_until - time.monotonic()))
                continue

            next_deadline = min(
                (d for (_, _, d) in inflight.values() if d is not None),
                default=None,
            )
            wait_for = None
            if next_deadline is not None:
                wait_for = max(0.0, next_deadline - time.monotonic()) + 0.01
            elif blocked_until is not None:
                wait_for = max(0.0, blocked_until - time.monotonic()) + 0.01
            done, _ = wait(
                set(inflight), timeout=wait_for, return_when=FIRST_COMPLETED
            )

            pool_broken = False
            for future in done:
                cell, attempt, _ = inflight.pop(future)
                try:
                    value = future.result()
                except BrokenProcessPool:
                    # The worker died (crash fault, OOM, kill -9).  The
                    # pool is unusable; every sibling future dies with
                    # it -- handled below.
                    failed(cell, attempt, "worker process died", True)
                    pool_broken = True
                except BaseException as exc:
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    failed(cell, attempt, exc, policy.retry.is_transient(exc))
                else:
                    _complete_fresh(
                        outcomes, journal, policy, cell, value, attempt + 1,
                        time.monotonic() - first_started[cell.id], total,
                        db, usage,
                    )

            # Reap overdue workers: kill the pool, charge the overdue
            # cells a timeout, resubmit innocents at the same attempt.
            now = time.monotonic()
            overdue = [
                future for future, (_, _, deadline) in inflight.items()
                if deadline is not None and now >= deadline
            ]
            if overdue or (pool_broken and inflight):
                for future, (cell, attempt, deadline) in list(inflight.items()):
                    if future in overdue:
                        failed(
                            cell, attempt,
                            f"timeout after {policy.timeout:.1f}s "
                            "(worker reaped)",
                            True,
                        )
                    elif pool_broken:
                        failed(cell, attempt, "worker process died", True)
                    else:
                        # Innocent victim of the pool teardown: requeue
                        # without charging an attempt.
                        queue.appendleft((cell, attempt, 0.0))
                inflight.clear()
                pool_broken = True
            if pool_broken:
                _kill_pool(executor)
                executor = ProcessPoolExecutor(max_workers=policy.workers)
    finally:
        _kill_pool(executor)
