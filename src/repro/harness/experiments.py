"""One entry point per table/figure of the paper.

Every function returns a plain, JSON-friendly dict so the benchmark
harness, the CLI, and the tests can all consume the same results.
Speedups are fractions (0.05 == +5%); coverage is a fraction of
predictable loads.  See EXPERIMENTS.md for paper-vs-measured values.
"""

from __future__ import annotations

import statistics
from dataclasses import replace

from repro.classify.oracle import LoadPattern, classify_trace
from repro.composite.composite import CompositePredictor
from repro.composite.config import CompositeConfig
from repro.composite.heterogeneous import (
    TABLE_VI_CONFIGS,
    paper_config,
    storage_kib,
)
from repro.eves.eves import eves_8kb, eves_32kb, eves_infinite
from repro.harness.functional import run_functional
from repro.harness.presets import QUICK, ExperimentScale
from repro.harness.runner import speedup, workload_trace
from repro.pipeline.vp import EvesAdapter, SingleComponentAdapter
from repro.predictors import COMPONENT_NAMES, make_component
from repro.predictors.fpc_vectors import table_iv_rows
from repro.workloads.listing1 import listing1_trace
from repro.workloads.profiles import ALL_WORKLOADS, WORKLOAD_FAMILY


def _mean(values) -> float:
    values = list(values)
    return statistics.mean(values) if values else 0.0


def _composite_config(scale: ExperimentScale, per_component: int,
                      **overrides) -> CompositeConfig:
    config = CompositeConfig(
        epoch_instructions=scale.epoch_instructions, seed=scale.seed
    ).homogeneous(per_component)
    return replace(config, **overrides) if overrides else config


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------

def table1_taxonomy() -> dict:
    """Table I: the four component predictors' taxonomy."""
    return {
        "rows": [
            {"predictor": "LVP", "predicts": "values", "context": "agnostic"},
            {"predictor": "SAP", "predicts": "addresses", "context": "agnostic"},
            {"predictor": "CVP", "predicts": "values", "context": "aware"},
            {"predictor": "CAP", "predicts": "addresses", "context": "aware"},
        ]
    }


def table2_workloads() -> dict:
    """Table II: the workload population, grouped by family."""
    by_family: dict[str, list[str]] = {}
    for name, family in WORKLOAD_FAMILY.items():
        by_family.setdefault(family, []).append(name)
    return {
        "total": len(ALL_WORKLOADS),
        "families": {f: sorted(ws) for f, ws in sorted(by_family.items())},
    }


def table3_core_config() -> dict:
    """Table III: baseline core configuration actually used."""
    from repro.pipeline.config import CoreConfig

    cfg = CoreConfig()
    return {
        "fetch_width": cfg.fetch_width,
        "issue_width": cfg.issue_width,
        "rob/iq/ldq/stq": (
            cfg.rob_entries, cfg.iq_entries, cfg.ldq_entries, cfg.stq_entries
        ),
        "fetch_to_execute": cfg.fetch_to_execute,
        "l1d": f"{cfg.hierarchy.l1d.size_bytes // 1024}KB "
               f"{cfg.hierarchy.l1d.associativity}-way "
               f"{cfg.hierarchy.l1d.hit_latency}-cycle",
        "l2": f"{cfg.hierarchy.l2.size_bytes // 1024}KB, "
              f"{cfg.hierarchy.l2.hit_latency}-cycle",
        "l3": f"{cfg.hierarchy.l3.size_bytes // (1024 * 1024)}MB, "
              f"{cfg.hierarchy.l3.hit_latency}-cycle",
        "memory_latency": cfg.hierarchy.memory_latency,
        "tlb": f"{cfg.hierarchy.tlb_entries}-entry "
               f"{cfg.hierarchy.tlb_associativity}-way",
    }


def table4_parameters() -> dict:
    """Table IV: predictor parameters, FPC vectors, storage."""
    rows = table_iv_rows()
    for row in rows:
        predictor = make_component(row["predictor"].lower(), 1024)
        row["storage_kib_at_1k"] = round(predictor.storage_kib(), 2)
    return {"rows": rows}


def table5_listing1(outer_m: int = 24, inner_n: int = 16) -> dict:
    """Table V: first predicted inner-loop load per outer iteration.

    Runs each component predictor (functionally, 4K entries so aliasing
    is nil -- the paper's "assuming no predictor aliasing") over the
    Listing-1 loop nest and records, for selected outer iterations, the
    first inner iteration whose scan load was predicted.  ``None``
    means the predictor never predicted during that outer iteration.
    """
    from repro.branch.history import HistorySet
    from repro.memory.image import MemoryImage
    from repro.predictors.types import LoadOutcome, LoadProbe, PredictionKind

    trace = listing1_trace(outer_m=outer_m, inner_n=inner_n)
    scan_pc = trace.metadata["scan_load_pc"]
    table: dict[str, list] = {}
    for name in COMPONENT_NAMES:
        predictor = make_component(name, 4096)
        histories = HistorySet()
        mem = trace.initial_memory.copy() if trace.initial_memory else MemoryImage()
        first_predicted: list = [None] * outer_m
        scan_count = 0
        for inst in trace.instructions:
            if inst.op.is_branch:
                if inst.op.name == "BRANCH_COND":
                    histories.push_branch(inst.pc, inst.taken)
                else:
                    histories.push_unconditional(inst.pc)
                continue
            if inst.op.is_store:
                mem.write(inst.addr, inst.size, inst.value)
                histories.push_memory(inst.pc)
                continue
            if not inst.is_load:
                continue
            probe = LoadProbe(
                pc=inst.pc,
                direction_history=histories.direction,
                path_history=histories.path,
                load_path_history=histories.load_path,
            )
            prediction = predictor.predict(probe)
            if inst.pc == scan_pc:
                outer, inner = divmod(scan_count, inner_n)
                scan_count += 1
                if prediction is not None and first_predicted[outer] is None:
                    correct = (
                        prediction.value == inst.value
                        if prediction.kind is PredictionKind.VALUE
                        else mem.read(prediction.addr, prediction.size) == inst.value
                    )
                    if correct:
                        first_predicted[outer] = inner
            predictor.train(LoadOutcome(
                pc=inst.pc, addr=inst.addr, size=inst.size, value=inst.value,
                direction_history=probe.direction_history,
                path_history=probe.path_history,
                load_path_history=probe.load_path_history,
            ))
            histories.push_memory(inst.pc)
        table[name] = first_predicted
    return {
        "outer_m": outer_m,
        "inner_n": inner_n,
        "first_predicted_inner_iteration": table,
    }


def table6_heterogeneous(
    scale: ExperimentScale = QUICK,
    totals: tuple[int, ...] = (256, 512, 1024),
    extra_candidates: int = 4,
) -> dict:
    """Table VI: best allocation per total-entry budget.

    Evaluates the homogeneous split, the paper's winning allocation,
    and a few alternative heterogeneous splits per budget, and reports
    the best.  (The paper's exhaustive 0..1K sweep is available by
    passing a longer candidate list; it is hours of pure-Python time.)
    """
    results = {}
    for total in totals:
        candidates = {(total // 4,) * 4}
        if total in TABLE_VI_CONFIGS:
            candidates.add(TABLE_VI_CONFIGS[total])
        quarter = total // 4
        alternates = [
            (quarter // 2, quarter * 2, quarter, quarter // 2),
            (quarter // 2, quarter, quarter * 2, quarter // 2),
            (quarter * 2, quarter, quarter // 2, quarter // 2),
            (quarter // 2, quarter // 2, quarter * 2, quarter),
        ]
        for alt in alternates[:extra_candidates]:
            if all(x > 0 for x in alt) and sum(alt) == total:
                candidates.add(alt)
        rows = []
        for allocation in sorted(candidates):
            lvp, sap, cvp, cap = allocation
            config = replace(
                CompositeConfig(
                    epoch_instructions=scale.epoch_instructions,
                    seed=scale.seed,
                ).with_entries(lvp, sap, cvp, cap),
                table_fusion=False,
            )
            gains = [
                speedup(wl, scale.trace_length, CompositePredictor(config),
                        seed)[0]
                for wl, seed in scale.runs()
            ]
            rows.append({
                "allocation": allocation,
                "storage_kib": round(storage_kib(*allocation), 2),
                "speedup": _mean(gains),
            })
        rows.sort(key=lambda r: r["speedup"], reverse=True)
        homogeneous = next(
            r for r in rows if r["allocation"] == (total // 4,) * 4
        )
        best = rows[0]
        results[total] = {
            "best": best,
            "homogeneous": homogeneous,
            "all": rows,
            "best_is_homogeneous": best["allocation"] == (total // 4,) * 4,
            "speedup_per_kib": (
                best["speedup"] / best["storage_kib"]
                if best["storage_kib"] else 0.0
            ),
        }
    return {"scale": scale.name, "budgets": results}


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------

def fig2_load_breakdown(scale: ExperimentScale = QUICK) -> dict:
    """Figure 2: oracle load-pattern breakdown."""
    per_workload = {}
    totals = {p: 0 for p in LoadPattern}
    grand_total = 0
    for wl, seed in scale.runs():
        result = classify_trace(workload_trace(wl, scale.trace_length, seed))
        per_workload[wl] = result.as_dict()
        for pattern in LoadPattern:
            totals[pattern] += result.counts[pattern]
        grand_total += result.total
    return {
        "scale": scale.name,
        "per_workload": per_workload,
        "average": {
            p.value: totals[p] / grand_total if grand_total else 0.0
            for p in LoadPattern
        },
    }


def fig3_component_speedup(
    scale: ExperimentScale = QUICK,
    sizes: tuple[int, ...] = (64, 256, 1024, 4096),
) -> dict:
    """Figure 3: per-component speedup as table entries scale."""
    curves: dict[str, dict[int, float]] = {n: {} for n in COMPONENT_NAMES}
    for name in COMPONENT_NAMES:
        for entries in sizes:
            gains = []
            for wl, seed in scale.runs():
                adapter = SingleComponentAdapter(make_component(name, entries))
                gains.append(
                    speedup(wl, scale.trace_length, adapter, seed)[0]
                )
            curves[name][entries] = _mean(gains)
    return {"scale": scale.name, "sizes": list(sizes), "speedup": curves}


def fig4_overlap(scale: ExperimentScale = QUICK, per_component: int = 1024) -> dict:
    """Figure 4: how many components cover each predicted load."""
    histogram = [0] * 5
    sole = dict.fromkeys(COMPONENT_NAMES, 0)
    total_loads = 0
    multi_confident = 0
    disagreements = 0
    for wl, seed in scale.runs():
        config = _composite_config(scale, per_component).plain()
        predictor = CompositePredictor(config)
        functional = run_functional(
            workload_trace(wl, scale.trace_length, seed), predictor
        )
        multi_confident += functional.multi_confident_loads
        disagreements += functional.disagreements
        stats = predictor.stats
        for k in range(5):
            histogram[k] += stats.confident_histogram[k]
        for name in COMPONENT_NAMES:
            sole[name] += stats.sole_predictor[name]
        total_loads += stats.loads
    predicted = sum(histogram[1:])
    return {
        "scale": scale.name,
        "per_component_entries": per_component,
        "fraction_predicted": predicted / total_loads if total_loads else 0.0,
        "by_count": {
            k: histogram[k] / predicted if predicted else 0.0
            for k in range(1, 5)
        },
        "multiple_fraction": (
            sum(histogram[2:]) / predicted if predicted else 0.0
        ),
        "sole_predictor": {
            n: sole[n] / predicted if predicted else 0.0
            for n in COMPONENT_NAMES
        },
        # The paper: "highly-confident predictors disagree less than
        # 0.03% of the time".
        "disagreement_fraction": (
            disagreements / multi_confident if multi_confident else 0.0
        ),
    }


def fig5_composite_vs_component(
    scale: ExperimentScale = QUICK,
    totals: tuple[int, ...] = (256, 1024, 4096),
) -> dict:
    """Figure 5: homogeneous composite vs best component, same budget."""
    rows = {}
    for total in totals:
        per = total // 4
        composite_gains = []
        component_gains = {n: [] for n in COMPONENT_NAMES}
        for wl, seed in scale.runs():
            config = _composite_config(scale, per).plain()
            composite_gains.append(
                speedup(wl, scale.trace_length, CompositePredictor(config),
                        seed)[0]
            )
            for name in COMPONENT_NAMES:
                adapter = SingleComponentAdapter(make_component(name, total))
                component_gains[name].append(
                    speedup(wl, scale.trace_length, adapter, seed)[0]
                )
        best_name, best_gain = max(
            ((n, _mean(g)) for n, g in component_gains.items()),
            key=lambda item: item[1],
        )
        rows[total] = {
            "composite": _mean(composite_gains),
            "best_component": best_gain,
            "best_component_name": best_name,
            "advantage": _mean(composite_gains) - best_gain,
        }
    return {"scale": scale.name, "totals": rows}


def fig6_accuracy_monitor(
    scale: ExperimentScale = QUICK, per_component: int = 256
) -> dict:
    """Figure 6: speedup from M-AM / PC-AM(64) / PC-AM(infinite)."""
    variants = {
        "base": {"accuracy_monitor": "none"},
        "m-am": {"accuracy_monitor": "m-am"},
        "pc-am-64": {"accuracy_monitor": "pc-am", "pc_am_entries": 64},
        "pc-am-infinite": {"accuracy_monitor": "pc-am-infinite"},
    }
    results = {}
    for label, overrides in variants.items():
        config = replace(
            _composite_config(scale, per_component).plain(), **overrides
        )
        gains = [
            speedup(wl, scale.trace_length, CompositePredictor(config),
                    seed)[0]
            for wl, seed in scale.runs()
        ]
        results[label] = _mean(gains)
    return {
        "scale": scale.name,
        "per_component_entries": per_component,
        "speedup": results,
    }


def fig7_smart_training(
    scale: ExperimentScale = QUICK,
    per_component_sizes: tuple[int, ...] = (64, 256, 1024),
) -> dict:
    """Figure 7: prediction-count breakdown and predictors trained."""
    results = {}
    for per in per_component_sizes:
        row = {}
        for label, smart in (("train_all", False), ("smart", True)):
            config = replace(
                _composite_config(scale, per).plain(), smart_training=smart
            )
            histogram = [0] * 5
            train_ops = 0
            train_events = 0
            for wl, seed in scale.runs():
                predictor = CompositePredictor(config)
                run_functional(
                    workload_trace(wl, scale.trace_length, seed), predictor
                )
                for k in range(5):
                    histogram[k] += predictor.stats.confident_histogram[k]
                train_ops += predictor.stats.train_operations
                train_events += predictor.stats.train_events
            predicted = sum(histogram[1:])
            row[label] = {
                "multiple_prediction_fraction": (
                    sum(histogram[2:]) / predicted if predicted else 0.0
                ),
                "avg_predictors_trained": (
                    train_ops / train_events if train_events else 0.0
                ),
            }
        results[per] = row
    return {"scale": scale.name, "sizes": results}


def _optimization_speedup_sweep(
    scale: ExperimentScale,
    per_component_sizes: tuple[int, ...],
    overrides: dict,
) -> dict:
    """Shared shape of Figures 8 and 9: base vs one optimization."""
    results = {}
    for per in per_component_sizes:
        base_config = _composite_config(scale, per).plain()
        opt_config = replace(base_config, **overrides)
        base_gains, opt_gains = [], []
        for wl, seed in scale.runs():
            base_gains.append(
                speedup(wl, scale.trace_length,
                        CompositePredictor(base_config), seed)[0]
            )
            opt_gains.append(
                speedup(wl, scale.trace_length,
                        CompositePredictor(opt_config), seed)[0]
            )
        results[per] = {
            "base": _mean(base_gains),
            "optimized": _mean(opt_gains),
            "delta": _mean(opt_gains) - _mean(base_gains),
        }
    return results


def fig8_smart_training_speedup(
    scale: ExperimentScale = QUICK,
    per_component_sizes: tuple[int, ...] = (64, 256, 1024),
) -> dict:
    """Figure 8: speedup from smart training across sizes."""
    return {
        "scale": scale.name,
        "sizes": _optimization_speedup_sweep(
            scale, per_component_sizes, {"smart_training": True}
        ),
    }


def fig9_table_fusion(
    scale: ExperimentScale = QUICK,
    per_component_sizes: tuple[int, ...] = (64, 256, 1024),
) -> dict:
    """Figure 9: speedup from table fusion across sizes."""
    return {
        "scale": scale.name,
        "sizes": _optimization_speedup_sweep(
            scale, per_component_sizes, {"table_fusion": True}
        ),
    }


def fig10_combined(
    scale: ExperimentScale = QUICK,
    totals: tuple[int, ...] = (256, 512, 1024, 4096),
) -> dict:
    """Figure 10: MAX(composite) vs MAX(component) per storage budget.

    The paper's Figure 10 plots the *maximum* benefit over its design
    space at each budget ("MAX (Component)" / "MAX (Composite)").  We
    therefore evaluate a small set of composite design points per
    budget -- the Table VI winning allocation with all optimizations,
    the homogeneous base composite, and the homogeneous composite with
    the PC-AM filter -- and report the best, against the best of the
    four components at the same total entry budget.
    """
    base = CompositeConfig(
        epoch_instructions=scale.epoch_instructions, seed=scale.seed
    )
    rows = {}
    for total in totals:
        per = total // 4
        candidates = {
            "paper-all-opts": paper_config(total, base),
            "homogeneous-plain": base.homogeneous(per).plain(),
            "homogeneous-pcam": replace(
                base.homogeneous(per).plain(), accuracy_monitor="pc-am"
            ),
        }
        composite_results = {}
        for label, config in candidates.items():
            composite_results[label] = _mean(
                speedup(wl, scale.trace_length, CompositePredictor(config),
                        seed)[0]
                for wl, seed in scale.runs()
            )
        best_composite_label, composite = max(
            composite_results.items(), key=lambda item: item[1]
        )
        component_gains = {}
        for name in COMPONENT_NAMES:
            component_gains[name] = _mean(
                speedup(
                    wl, scale.trace_length,
                    SingleComponentAdapter(make_component(name, total)),
                    seed,
                )[0]
                for wl, seed in scale.runs()
            )
        best_name, best_gain = max(
            component_gains.items(), key=lambda item: item[1]
        )
        winner = candidates[best_composite_label]
        rows[total] = {
            "storage_kib": round(storage_kib(*winner.entries().values()), 2),
            "composite": composite,
            "composite_config": best_composite_label,
            "composite_all": composite_results,
            "best_component": best_gain,
            "best_component_name": best_name,
            "improvement": (
                composite / best_gain - 1.0 if best_gain > 0 else float("inf")
            ),
        }
    return {"scale": scale.name, "totals": rows}


def _eves_adapters() -> dict:
    return {
        "eves-8kb": lambda seed: EvesAdapter(eves_8kb(seed)),
        "eves-32kb": lambda seed: EvesAdapter(eves_32kb(seed)),
        "eves-infinite": lambda seed: EvesAdapter(eves_infinite(seed)),
    }


def _composite_for_budget(scale: ExperimentScale, total: int) -> CompositePredictor:
    config = paper_config(
        total,
        CompositeConfig(
            epoch_instructions=scale.epoch_instructions, seed=scale.seed
        ),
    )
    return CompositePredictor(config)


def fig11_vs_eves(scale: ExperimentScale = QUICK) -> dict:
    """Figure 11: composite (small budgets) vs EVES (large budgets)."""
    contenders: dict[str, dict] = {}
    specs = {
        "composite-4.8kb": lambda seed: _composite_for_budget(scale, 512),
        "composite-9.6kb": lambda seed: _composite_for_budget(scale, 1024),
        **_eves_adapters(),
    }
    for label, factory in specs.items():
        gains, coverages = [], []
        for wl, seed in scale.runs():
            gain, result = speedup(
                wl, scale.trace_length, factory(seed), seed
            )
            gains.append(gain)
            coverages.append(result.coverage)
        contenders[label] = {
            "speedup": _mean(gains),
            "coverage": _mean(coverages),
        }
    small = contenders["composite-9.6kb"]
    eves = contenders["eves-32kb"]
    return {
        "scale": scale.name,
        "contenders": contenders,
        "composite96_vs_eves32": {
            "speedup_increase": (
                small["speedup"] / eves["speedup"] - 1.0
                if eves["speedup"] > 0 else float("inf")
            ),
            "coverage_increase": (
                small["coverage"] / eves["coverage"] - 1.0
                if eves["coverage"] > 0 else float("inf")
            ),
        },
    }


def ablation_footnote1(scale: ExperimentScale = QUICK,
                       per_component: int = 256) -> dict:
    """Footnote 1: last-address and stride-value predictors are
    redundant next to the chosen four.

    Measures LAP and SVP standalone, then a six-component composite
    (the four + LAP + SVP) against the paper's four-component
    composite at the same per-component size.  The paper's finding is
    that the extras add "limited or no benefit in the presence of the
    four selected predictors" despite costing extra storage.
    """
    base = CompositeConfig(
        epoch_instructions=scale.epoch_instructions, seed=scale.seed,
        table_fusion=False,
    ).homogeneous(per_component)
    extended = replace(
        base,
        extra_components=(("lap", per_component), ("svp", per_component)),
    )

    standalone = {}
    for name in ("lap", "svp"):
        standalone[name] = _mean(
            speedup(
                wl, scale.trace_length,
                SingleComponentAdapter(make_component(name, 4 * per_component)),
                seed,
            )[0]
            for wl, seed in scale.runs()
        )

    def run(config):
        gains, coverages = [], []
        for wl, seed in scale.runs():
            gain, result = speedup(
                wl, scale.trace_length, CompositePredictor(config), seed
            )
            gains.append(gain)
            coverages.append(result.coverage)
        return {"speedup": _mean(gains), "coverage": _mean(coverages)}

    four = run(base)
    six = run(extended)
    return {
        "scale": scale.name,
        "per_component_entries": per_component,
        "standalone": standalone,
        "composite_four": four,
        "composite_six": six,
        "speedup_benefit_of_extras": six["speedup"] - four["speedup"],
        "coverage_benefit_of_extras": six["coverage"] - four["coverage"],
    }


def ablation_selection_policy(scale: ExperimentScale = QUICK,
                              per_component: int = 256) -> dict:
    """Section V-A's power point: value-first vs address-first selection.

    The paper prefers value predictions because highly-confident
    components almost never disagree, so the selection policy cannot
    change outcomes -- only how often the speculative D-cache is
    probed.  Measures speedup and PAQ probes under both policies, on
    the Section V-A *base* composite (smart training would remove most
    of the overlap the policy arbitrates).
    """
    results = {}
    for label, prefer_value in (("value-first", True), ("address-first", False)):
        config = replace(
            _composite_config(scale, per_component).plain(),
            prefer_value_predictions=prefer_value,
        )
        gains, probes, predictions = [], 0, 0
        for wl, seed in scale.runs():
            gain, result = speedup(
                wl, scale.trace_length, CompositePredictor(config), seed
            )
            gains.append(gain)
            probes += result.paq_probes
            predictions += result.predicted_loads
        results[label] = {
            "speedup": _mean(gains),
            "paq_probes": probes,
            "predictions": predictions,
            "probes_per_prediction": probes / predictions if predictions else 0.0,
        }
    return {
        "scale": scale.name,
        "per_component_entries": per_component,
        "policies": results,
        "speedup_delta": (
            results["value-first"]["speedup"]
            - results["address-first"]["speedup"]
        ),
        "probe_reduction": (
            1.0 - results["value-first"]["paq_probes"]
            / results["address-first"]["paq_probes"]
            if results["address-first"]["paq_probes"] else 0.0
        ),
    }


def ablation_confidence_tuning(
    scale: ExperimentScale = QUICK,
    per_component: int = 256,
    deltas: tuple[int, ...] = (0, -1, -2),
) -> dict:
    """Section III-B's tuning rationale: lower confidence bars raise
    coverage but cost accuracy, and the misprediction flushes eat the
    gains ("lower accuracy tends to decrease performance gains").
    """
    rows = {}
    for delta in deltas:
        config = replace(
            _composite_config(scale, per_component).plain(),
            confidence_delta=delta,
        )
        gains, coverages, accuracies = [], [], []
        for wl, seed in scale.runs():
            gain, result = speedup(
                wl, scale.trace_length, CompositePredictor(config), seed
            )
            gains.append(gain)
            coverages.append(result.coverage)
            accuracies.append(result.accuracy)
        rows[delta] = {
            "speedup": _mean(gains),
            "coverage": _mean(coverages),
            "accuracy": _mean(accuracies),
        }
    return {
        "scale": scale.name,
        "per_component_entries": per_component,
        "deltas": rows,
    }


def fig12_per_workload(scale: ExperimentScale = QUICK) -> dict:
    """Figure 12: per-workload composite (9.6KB) vs EVES (32KB)."""
    per_workload = {}
    composite_wins = 0
    eves_wins = 0
    for wl in scale.workloads:
        composite_gains, eves_gains = [], []
        composite_covs, eves_covs = [], []
        for seed in scale.seeds:
            composite_gain, composite_result = speedup(
                wl, scale.trace_length, _composite_for_budget(scale, 1024),
                seed,
            )
            eves_gain, eves_result = speedup(
                wl, scale.trace_length, EvesAdapter(eves_32kb(seed)), seed
            )
            composite_gains.append(composite_gain)
            eves_gains.append(eves_gain)
            composite_covs.append(composite_result.coverage)
            eves_covs.append(eves_result.coverage)
        composite_gain = _mean(composite_gains)
        eves_gain = _mean(eves_gains)
        if composite_gain > eves_gain + 1e-9:
            composite_wins += 1
        elif eves_gain > composite_gain + 1e-9:
            eves_wins += 1
        per_workload[wl] = {
            "composite_speedup": composite_gain,
            "eves_speedup": eves_gain,
            "composite_coverage": _mean(composite_covs),
            "eves_coverage": _mean(eves_covs),
        }
    return {
        "scale": scale.name,
        "per_workload": per_workload,
        "composite_wins": composite_wins,
        "eves_wins": eves_wins,
        "average": {
            "composite_speedup": _mean(
                r["composite_speedup"] for r in per_workload.values()
            ),
            "eves_speedup": _mean(
                r["eves_speedup"] for r in per_workload.values()
            ),
            "composite_coverage": _mean(
                r["composite_coverage"] for r in per_workload.values()
            ),
            "eves_coverage": _mean(
                r["eves_coverage"] for r in per_workload.values()
            ),
        },
    }
