"""One entry point per table/figure of the paper.

Every function returns a plain, JSON-friendly dict so the benchmark
harness, the CLI, and the tests can all consume the same results.
Speedups are fractions (0.05 == +5%); coverage is a fraction of
predictable loads.  See EXPERIMENTS.md for paper-vs-measured values.

Timing sweeps (everything built on per-(workload, config) speedup
runs) are decomposed into independent **cells** and executed through
:mod:`repro.harness.resilient`: under the default policy they run
in-process exactly as the historical loops did, but the CLI can arm
per-cell timeouts, retries, worker subprocesses, and a crash-safe
journal (``--resume``) around any of them.  When cells fail
terminally, the experiment still returns its aggregate over the
surviving cells plus a structured ``"failures"`` summary.
"""

from __future__ import annotations

import statistics
from dataclasses import replace

from repro.classify.oracle import LoadPattern, classify_trace
from repro.composite.composite import CompositePredictor
from repro.composite.config import CompositeConfig
from repro.composite.heterogeneous import (
    paper_config,
    storage_kib,
    table6_candidates,
)
from repro.harness import resilient
from repro.harness.functional import run_functional
from repro.harness.presets import QUICK, ExperimentScale
from repro.harness.runner import speedup_cell, workload_trace
from repro.predictors import COMPONENT_NAMES, make_component
from repro.predictors.fpc_vectors import table_iv_rows
from repro.workloads.listing1 import listing1_trace
from repro.workloads.profiles import ALL_WORKLOADS, WORKLOAD_FAMILY


def _mean(values) -> float:
    values = list(values)
    return statistics.mean(values) if values else 0.0


def _composite_spec(config: CompositeConfig) -> dict:
    return {"kind": "composite", "config": config}


def _component_spec(name: str, entries: int) -> dict:
    return {"kind": "component", "name": name, "entries": entries}


def _eves_spec(variant: str, seed: int) -> dict:
    return {"kind": "eves", "variant": variant, "seed": seed}


def _gather(report: "resilient.SweepReport", ids, metric: str) -> list:
    """The named metric from every surviving cell in ``ids``."""
    values = (report.value(cell_id) for cell_id in ids)
    return [value[metric] for value in values if value is not None]


def _composite_config(scale: ExperimentScale, per_component: int,
                      **overrides) -> CompositeConfig:
    config = CompositeConfig(
        epoch_instructions=scale.epoch_instructions, seed=scale.seed
    ).homogeneous(per_component)
    return replace(config, **overrides) if overrides else config


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------

def table1_taxonomy() -> dict:
    """Table I: the four component predictors' taxonomy."""
    return {
        "rows": [
            {"predictor": "LVP", "predicts": "values", "context": "agnostic"},
            {"predictor": "SAP", "predicts": "addresses", "context": "agnostic"},
            {"predictor": "CVP", "predicts": "values", "context": "aware"},
            {"predictor": "CAP", "predicts": "addresses", "context": "aware"},
        ]
    }


def table2_workloads() -> dict:
    """Table II: the workload population, grouped by family."""
    by_family: dict[str, list[str]] = {}
    for name, family in WORKLOAD_FAMILY.items():
        by_family.setdefault(family, []).append(name)
    return {
        "total": len(ALL_WORKLOADS),
        "families": {f: sorted(ws) for f, ws in sorted(by_family.items())},
    }


def table3_core_config() -> dict:
    """Table III: baseline core configuration actually used."""
    from repro.pipeline.config import CoreConfig

    cfg = CoreConfig()
    return {
        "fetch_width": cfg.fetch_width,
        "issue_width": cfg.issue_width,
        "rob/iq/ldq/stq": (
            cfg.rob_entries, cfg.iq_entries, cfg.ldq_entries, cfg.stq_entries
        ),
        "fetch_to_execute": cfg.fetch_to_execute,
        "l1d": f"{cfg.hierarchy.l1d.size_bytes // 1024}KB "
               f"{cfg.hierarchy.l1d.associativity}-way "
               f"{cfg.hierarchy.l1d.hit_latency}-cycle",
        "l2": f"{cfg.hierarchy.l2.size_bytes // 1024}KB, "
              f"{cfg.hierarchy.l2.hit_latency}-cycle",
        "l3": f"{cfg.hierarchy.l3.size_bytes // (1024 * 1024)}MB, "
              f"{cfg.hierarchy.l3.hit_latency}-cycle",
        "memory_latency": cfg.hierarchy.memory_latency,
        "tlb": f"{cfg.hierarchy.tlb_entries}-entry "
               f"{cfg.hierarchy.tlb_associativity}-way",
    }


def table4_parameters() -> dict:
    """Table IV: predictor parameters, FPC vectors, storage."""
    rows = table_iv_rows()
    for row in rows:
        predictor = make_component(row["predictor"].lower(), 1024)
        row["storage_kib_at_1k"] = round(predictor.storage_kib(), 2)
    return {"rows": rows}


def table5_listing1(outer_m: int = 24, inner_n: int = 16) -> dict:
    """Table V: first predicted inner-loop load per outer iteration.

    Runs each component predictor (functionally, 4K entries so aliasing
    is nil -- the paper's "assuming no predictor aliasing") over the
    Listing-1 loop nest and records, for selected outer iterations, the
    first inner iteration whose scan load was predicted.  ``None``
    means the predictor never predicted during that outer iteration.
    """
    from repro.branch.history import HistorySet
    from repro.memory.image import MemoryImage
    from repro.predictors.types import LoadOutcome, LoadProbe, PredictionKind

    trace = listing1_trace(outer_m=outer_m, inner_n=inner_n)
    scan_pc = trace.metadata["scan_load_pc"]
    table: dict[str, list] = {}
    for name in COMPONENT_NAMES:
        predictor = make_component(name, 4096)
        histories = HistorySet()
        mem = trace.initial_memory.copy() if trace.initial_memory else MemoryImage()
        first_predicted: list = [None] * outer_m
        scan_count = 0
        for inst in trace.instructions:
            if inst.op.is_branch:
                if inst.op.name == "BRANCH_COND":
                    histories.push_branch(inst.pc, inst.taken)
                else:
                    histories.push_unconditional(inst.pc)
                continue
            if inst.op.is_store:
                mem.write(inst.addr, inst.size, inst.value)
                histories.push_memory(inst.pc)
                continue
            if not inst.is_load:
                continue
            probe = LoadProbe(
                pc=inst.pc,
                direction_history=histories.direction,
                path_history=histories.path,
                load_path_history=histories.load_path,
            )
            prediction = predictor.predict(probe)
            if inst.pc == scan_pc:
                outer, inner = divmod(scan_count, inner_n)
                scan_count += 1
                if prediction is not None and first_predicted[outer] is None:
                    correct = (
                        prediction.value == inst.value
                        if prediction.kind is PredictionKind.VALUE
                        else mem.read(prediction.addr, prediction.size) == inst.value
                    )
                    if correct:
                        first_predicted[outer] = inner
            predictor.train(LoadOutcome(
                pc=inst.pc, addr=inst.addr, size=inst.size, value=inst.value,
                direction_history=probe.direction_history,
                path_history=probe.path_history,
                load_path_history=probe.load_path_history,
            ))
            histories.push_memory(inst.pc)
        table[name] = first_predicted
    return {
        "outer_m": outer_m,
        "inner_n": inner_n,
        "first_predicted_inner_iteration": table,
    }


def table6_heterogeneous(
    scale: ExperimentScale = QUICK,
    totals: tuple[int, ...] = (256, 512, 1024),
    extra_candidates: int = 4,
) -> dict:
    """Table VI: best allocation per total-entry budget.

    Evaluates the homogeneous split, the paper's winning allocation,
    and a few alternative heterogeneous splits per budget, and reports
    the best.  (The paper's exhaustive 0..1K sweep is available by
    passing a longer candidate list; it is hours of pure-Python time.)
    """
    candidates_by_total: dict[int, list[tuple[int, ...]]] = {}
    cells = []
    for total in totals:
        candidates_by_total[total] = table6_candidates(total, extra_candidates)
        for allocation in candidates_by_total[total]:
            lvp, sap, cvp, cap = allocation
            config = replace(
                CompositeConfig(
                    epoch_instructions=scale.epoch_instructions,
                    seed=scale.seed,
                ).with_entries(lvp, sap, cvp, cap),
                table_fusion=False,
            )
            for wl, seed in scale.runs():
                cells.append(speedup_cell(
                    _alloc_cell_id(total, allocation, wl, seed),
                    wl, scale.trace_length, _composite_spec(config), seed,
                ))
    report = resilient.sweep(cells)

    results = {}
    for total in totals:
        rows = []
        for allocation in candidates_by_total[total]:
            gains = _gather(report, [
                _alloc_cell_id(total, allocation, wl, seed)
                for wl, seed in scale.runs()
            ], "speedup")
            rows.append({
                "allocation": allocation,
                "storage_kib": round(storage_kib(*allocation), 2),
                "speedup": _mean(gains),
            })
        rows.sort(key=lambda r: r["speedup"], reverse=True)
        homogeneous = next(
            r for r in rows if r["allocation"] == (total // 4,) * 4
        )
        best = rows[0]
        results[total] = {
            "best": best,
            "homogeneous": homogeneous,
            "all": rows,
            "best_is_homogeneous": best["allocation"] == (total // 4,) * 4,
            "speedup_per_kib": (
                best["speedup"] / best["storage_kib"]
                if best["storage_kib"] else 0.0
            ),
        }
    return resilient.attach_failures(
        {"scale": scale.name, "budgets": results}, report
    )


def _alloc_cell_id(
    total: int, allocation: tuple[int, ...], workload: str, seed: int
) -> str:
    return (
        f"table6/t{total}/{'-'.join(map(str, allocation))}/{workload}/s{seed}"
    )


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------

def fig2_load_breakdown(scale: ExperimentScale = QUICK) -> dict:
    """Figure 2: oracle load-pattern breakdown."""
    per_workload = {}
    totals = {p: 0 for p in LoadPattern}
    grand_total = 0
    for wl, seed in scale.runs():
        result = classify_trace(workload_trace(wl, scale.trace_length, seed))
        per_workload[wl] = result.as_dict()
        for pattern in LoadPattern:
            totals[pattern] += result.counts[pattern]
        grand_total += result.total
    return {
        "scale": scale.name,
        "per_workload": per_workload,
        "average": {
            p.value: totals[p] / grand_total if grand_total else 0.0
            for p in LoadPattern
        },
    }


def fig3_component_speedup(
    scale: ExperimentScale = QUICK,
    sizes: tuple[int, ...] = (64, 256, 1024, 4096),
) -> dict:
    """Figure 3: per-component speedup as table entries scale."""
    def cell_id(name, entries, wl, seed):
        return f"fig3/{name}/e{entries}/{wl}/s{seed}"

    cells = [
        speedup_cell(
            cell_id(name, entries, wl, seed),
            wl, scale.trace_length, _component_spec(name, entries), seed,
        )
        for name in COMPONENT_NAMES
        for entries in sizes
        for wl, seed in scale.runs()
    ]
    report = resilient.sweep(cells)
    curves: dict[str, dict[int, float]] = {n: {} for n in COMPONENT_NAMES}
    for name in COMPONENT_NAMES:
        for entries in sizes:
            curves[name][entries] = _mean(_gather(report, [
                cell_id(name, entries, wl, seed)
                for wl, seed in scale.runs()
            ], "speedup"))
    return resilient.attach_failures(
        {"scale": scale.name, "sizes": list(sizes), "speedup": curves}, report
    )


def fig4_overlap(scale: ExperimentScale = QUICK, per_component: int = 1024) -> dict:
    """Figure 4: how many components cover each predicted load."""
    histogram = [0] * 5
    sole = dict.fromkeys(COMPONENT_NAMES, 0)
    total_loads = 0
    multi_confident = 0
    disagreements = 0
    for wl, seed in scale.runs():
        config = _composite_config(scale, per_component).plain()
        predictor = CompositePredictor(config)
        functional = run_functional(
            workload_trace(wl, scale.trace_length, seed), predictor
        )
        multi_confident += functional.multi_confident_loads
        disagreements += functional.disagreements
        stats = predictor.stats
        for k in range(5):
            histogram[k] += stats.confident_histogram[k]
        for name in COMPONENT_NAMES:
            sole[name] += stats.sole_predictor[name]
        total_loads += stats.loads
    predicted = sum(histogram[1:])
    return {
        "scale": scale.name,
        "per_component_entries": per_component,
        "fraction_predicted": predicted / total_loads if total_loads else 0.0,
        "by_count": {
            k: histogram[k] / predicted if predicted else 0.0
            for k in range(1, 5)
        },
        "multiple_fraction": (
            sum(histogram[2:]) / predicted if predicted else 0.0
        ),
        "sole_predictor": {
            n: sole[n] / predicted if predicted else 0.0
            for n in COMPONENT_NAMES
        },
        # The paper: "highly-confident predictors disagree less than
        # 0.03% of the time".
        "disagreement_fraction": (
            disagreements / multi_confident if multi_confident else 0.0
        ),
    }


def fig5_composite_vs_component(
    scale: ExperimentScale = QUICK,
    totals: tuple[int, ...] = (256, 1024, 4096),
) -> dict:
    """Figure 5: homogeneous composite vs best component, same budget."""
    def cell_id(total, contender, wl, seed):
        return f"fig5/t{total}/{contender}/{wl}/s{seed}"

    cells = []
    for total in totals:
        config = _composite_config(scale, total // 4).plain()
        for wl, seed in scale.runs():
            cells.append(speedup_cell(
                cell_id(total, "composite", wl, seed),
                wl, scale.trace_length, _composite_spec(config), seed,
            ))
            for name in COMPONENT_NAMES:
                cells.append(speedup_cell(
                    cell_id(total, name, wl, seed),
                    wl, scale.trace_length, _component_spec(name, total), seed,
                ))
    report = resilient.sweep(cells)

    rows = {}
    for total in totals:
        composite = _mean(_gather(report, [
            cell_id(total, "composite", wl, seed) for wl, seed in scale.runs()
        ], "speedup"))
        component_gains = {
            name: _mean(_gather(report, [
                cell_id(total, name, wl, seed) for wl, seed in scale.runs()
            ], "speedup"))
            for name in COMPONENT_NAMES
        }
        best_name, best_gain = max(
            component_gains.items(), key=lambda item: item[1]
        )
        rows[total] = {
            "composite": composite,
            "best_component": best_gain,
            "best_component_name": best_name,
            "advantage": composite - best_gain,
        }
    return resilient.attach_failures(
        {"scale": scale.name, "totals": rows}, report
    )


def fig6_accuracy_monitor(
    scale: ExperimentScale = QUICK, per_component: int = 256
) -> dict:
    """Figure 6: speedup from M-AM / PC-AM(64) / PC-AM(infinite)."""
    variants = {
        "base": {"accuracy_monitor": "none"},
        "m-am": {"accuracy_monitor": "m-am"},
        "pc-am-64": {"accuracy_monitor": "pc-am", "pc_am_entries": 64},
        "pc-am-infinite": {"accuracy_monitor": "pc-am-infinite"},
    }
    cells = []
    for label, overrides in variants.items():
        config = replace(
            _composite_config(scale, per_component).plain(), **overrides
        )
        for wl, seed in scale.runs():
            cells.append(speedup_cell(
                f"fig6/{label}/{wl}/s{seed}",
                wl, scale.trace_length, _composite_spec(config), seed,
            ))
    report = resilient.sweep(cells)
    results = {
        label: _mean(_gather(report, [
            f"fig6/{label}/{wl}/s{seed}" for wl, seed in scale.runs()
        ], "speedup"))
        for label in variants
    }
    return resilient.attach_failures({
        "scale": scale.name,
        "per_component_entries": per_component,
        "speedup": results,
    }, report)


def fig7_smart_training(
    scale: ExperimentScale = QUICK,
    per_component_sizes: tuple[int, ...] = (64, 256, 1024),
) -> dict:
    """Figure 7: prediction-count breakdown and predictors trained."""
    results = {}
    for per in per_component_sizes:
        row = {}
        for label, smart in (("train_all", False), ("smart", True)):
            config = replace(
                _composite_config(scale, per).plain(), smart_training=smart
            )
            histogram = [0] * 5
            train_ops = 0
            train_events = 0
            for wl, seed in scale.runs():
                predictor = CompositePredictor(config)
                run_functional(
                    workload_trace(wl, scale.trace_length, seed), predictor
                )
                for k in range(5):
                    histogram[k] += predictor.stats.confident_histogram[k]
                train_ops += predictor.stats.train_operations
                train_events += predictor.stats.train_events
            predicted = sum(histogram[1:])
            row[label] = {
                "multiple_prediction_fraction": (
                    sum(histogram[2:]) / predicted if predicted else 0.0
                ),
                "avg_predictors_trained": (
                    train_ops / train_events if train_events else 0.0
                ),
            }
        results[per] = row
    return {"scale": scale.name, "sizes": results}


def _optimization_speedup_sweep(
    scale: ExperimentScale,
    per_component_sizes: tuple[int, ...],
    overrides: dict,
    tag: str,
) -> tuple[dict, "resilient.SweepReport"]:
    """Shared shape of Figures 8 and 9: base vs one optimization."""
    def cell_id(per, label, wl, seed):
        return f"{tag}/p{per}/{label}/{wl}/s{seed}"

    cells = []
    for per in per_component_sizes:
        base_config = _composite_config(scale, per).plain()
        for label, config in (
            ("base", base_config),
            ("optimized", replace(base_config, **overrides)),
        ):
            for wl, seed in scale.runs():
                cells.append(speedup_cell(
                    cell_id(per, label, wl, seed),
                    wl, scale.trace_length, _composite_spec(config), seed,
                ))
    report = resilient.sweep(cells)

    results = {}
    for per in per_component_sizes:
        base, opt = (
            _mean(_gather(report, [
                cell_id(per, label, wl, seed) for wl, seed in scale.runs()
            ], "speedup"))
            for label in ("base", "optimized")
        )
        results[per] = {"base": base, "optimized": opt, "delta": opt - base}
    return results, report


def fig8_smart_training_speedup(
    scale: ExperimentScale = QUICK,
    per_component_sizes: tuple[int, ...] = (64, 256, 1024),
) -> dict:
    """Figure 8: speedup from smart training across sizes."""
    sizes, report = _optimization_speedup_sweep(
        scale, per_component_sizes, {"smart_training": True}, tag="fig8"
    )
    return resilient.attach_failures(
        {"scale": scale.name, "sizes": sizes}, report
    )


def fig9_table_fusion(
    scale: ExperimentScale = QUICK,
    per_component_sizes: tuple[int, ...] = (64, 256, 1024),
) -> dict:
    """Figure 9: speedup from table fusion across sizes."""
    sizes, report = _optimization_speedup_sweep(
        scale, per_component_sizes, {"table_fusion": True}, tag="fig9"
    )
    return resilient.attach_failures(
        {"scale": scale.name, "sizes": sizes}, report
    )


def fig10_combined(
    scale: ExperimentScale = QUICK,
    totals: tuple[int, ...] = (256, 512, 1024, 4096),
) -> dict:
    """Figure 10: MAX(composite) vs MAX(component) per storage budget.

    The paper's Figure 10 plots the *maximum* benefit over its design
    space at each budget ("MAX (Component)" / "MAX (Composite)").  We
    therefore evaluate a small set of composite design points per
    budget -- the Table VI winning allocation with all optimizations,
    the homogeneous base composite, and the homogeneous composite with
    the PC-AM filter -- and report the best, against the best of the
    four components at the same total entry budget.
    """
    base = CompositeConfig(
        epoch_instructions=scale.epoch_instructions, seed=scale.seed
    )

    def cell_id(total, contender, wl, seed):
        return f"fig10/t{total}/{contender}/{wl}/s{seed}"

    candidates_by_total = {}
    cells = []
    for total in totals:
        per = total // 4
        candidates = {
            "paper-all-opts": paper_config(total, base),
            "homogeneous-plain": base.homogeneous(per).plain(),
            "homogeneous-pcam": replace(
                base.homogeneous(per).plain(), accuracy_monitor="pc-am"
            ),
        }
        candidates_by_total[total] = candidates
        for wl, seed in scale.runs():
            for label, config in candidates.items():
                cells.append(speedup_cell(
                    cell_id(total, f"composite/{label}", wl, seed),
                    wl, scale.trace_length, _composite_spec(config), seed,
                ))
            for name in COMPONENT_NAMES:
                cells.append(speedup_cell(
                    cell_id(total, f"component/{name}", wl, seed),
                    wl, scale.trace_length, _component_spec(name, total), seed,
                ))
    report = resilient.sweep(cells)

    rows = {}
    for total in totals:
        candidates = candidates_by_total[total]
        composite_results = {
            label: _mean(_gather(report, [
                cell_id(total, f"composite/{label}", wl, seed)
                for wl, seed in scale.runs()
            ], "speedup"))
            for label in candidates
        }
        best_composite_label, composite = max(
            composite_results.items(), key=lambda item: item[1]
        )
        component_gains = {
            name: _mean(_gather(report, [
                cell_id(total, f"component/{name}", wl, seed)
                for wl, seed in scale.runs()
            ], "speedup"))
            for name in COMPONENT_NAMES
        }
        best_name, best_gain = max(
            component_gains.items(), key=lambda item: item[1]
        )
        winner = candidates[best_composite_label]
        rows[total] = {
            "storage_kib": round(storage_kib(*winner.entries().values()), 2),
            "composite": composite,
            "composite_config": best_composite_label,
            "composite_all": composite_results,
            "best_component": best_gain,
            "best_component_name": best_name,
            "improvement": (
                composite / best_gain - 1.0 if best_gain > 0 else float("inf")
            ),
        }
    return resilient.attach_failures(
        {"scale": scale.name, "totals": rows}, report
    )


def _budget_config(scale: ExperimentScale, total: int) -> CompositeConfig:
    return paper_config(
        total,
        CompositeConfig(
            epoch_instructions=scale.epoch_instructions, seed=scale.seed
        ),
    )


def fig11_vs_eves(scale: ExperimentScale = QUICK) -> dict:
    """Figure 11: composite (small budgets) vs EVES (large budgets)."""
    def specs(seed):
        return {
            "composite-4.8kb": _composite_spec(_budget_config(scale, 512)),
            "composite-9.6kb": _composite_spec(_budget_config(scale, 1024)),
            "eves-8kb": _eves_spec("8kb", seed),
            "eves-32kb": _eves_spec("32kb", seed),
            "eves-infinite": _eves_spec("infinite", seed),
        }

    labels = tuple(specs(0))
    cells = [
        speedup_cell(
            f"fig11/{label}/{wl}/s{seed}",
            wl, scale.trace_length, spec, seed,
        )
        for wl, seed in scale.runs()
        for label, spec in specs(seed).items()
    ]
    report = resilient.sweep(cells)

    contenders: dict[str, dict] = {}
    for label in labels:
        ids = [f"fig11/{label}/{wl}/s{seed}" for wl, seed in scale.runs()]
        contenders[label] = {
            "speedup": _mean(_gather(report, ids, "speedup")),
            "coverage": _mean(_gather(report, ids, "coverage")),
        }
    small = contenders["composite-9.6kb"]
    eves = contenders["eves-32kb"]
    return resilient.attach_failures({
        "scale": scale.name,
        "contenders": contenders,
        "composite96_vs_eves32": {
            "speedup_increase": (
                small["speedup"] / eves["speedup"] - 1.0
                if eves["speedup"] > 0 else float("inf")
            ),
            "coverage_increase": (
                small["coverage"] / eves["coverage"] - 1.0
                if eves["coverage"] > 0 else float("inf")
            ),
        },
    }, report)


def ablation_footnote1(scale: ExperimentScale = QUICK,
                       per_component: int = 256) -> dict:
    """Footnote 1: last-address and stride-value predictors are
    redundant next to the chosen four.

    Measures LAP and SVP standalone, then a six-component composite
    (the four + LAP + SVP) against the paper's four-component
    composite at the same per-component size.  The paper's finding is
    that the extras add "limited or no benefit in the presence of the
    four selected predictors" despite costing extra storage.
    """
    base = CompositeConfig(
        epoch_instructions=scale.epoch_instructions, seed=scale.seed,
        table_fusion=False,
    ).homogeneous(per_component)
    extended = replace(
        base,
        extra_components=(("lap", per_component), ("svp", per_component)),
    )

    cells = []
    for name in ("lap", "svp"):
        for wl, seed in scale.runs():
            cells.append(speedup_cell(
                f"ablation1/standalone/{name}/{wl}/s{seed}",
                wl, scale.trace_length,
                _component_spec(name, 4 * per_component), seed,
            ))
    for label, config in (("four", base), ("six", extended)):
        for wl, seed in scale.runs():
            cells.append(speedup_cell(
                f"ablation1/composite/{label}/{wl}/s{seed}",
                wl, scale.trace_length, _composite_spec(config), seed,
            ))
    report = resilient.sweep(cells)

    standalone = {
        name: _mean(_gather(report, [
            f"ablation1/standalone/{name}/{wl}/s{seed}"
            for wl, seed in scale.runs()
        ], "speedup"))
        for name in ("lap", "svp")
    }

    def aggregate(label):
        ids = [
            f"ablation1/composite/{label}/{wl}/s{seed}"
            for wl, seed in scale.runs()
        ]
        return {
            "speedup": _mean(_gather(report, ids, "speedup")),
            "coverage": _mean(_gather(report, ids, "coverage")),
        }

    four = aggregate("four")
    six = aggregate("six")
    return resilient.attach_failures({
        "scale": scale.name,
        "per_component_entries": per_component,
        "standalone": standalone,
        "composite_four": four,
        "composite_six": six,
        "speedup_benefit_of_extras": six["speedup"] - four["speedup"],
        "coverage_benefit_of_extras": six["coverage"] - four["coverage"],
    }, report)


def ablation_selection_policy(scale: ExperimentScale = QUICK,
                              per_component: int = 256) -> dict:
    """Section V-A's power point: value-first vs address-first selection.

    The paper prefers value predictions because highly-confident
    components almost never disagree, so the selection policy cannot
    change outcomes -- only how often the speculative D-cache is
    probed.  Measures speedup and PAQ probes under both policies, on
    the Section V-A *base* composite (smart training would remove most
    of the overlap the policy arbitrates).
    """
    policies = (("value-first", True), ("address-first", False))
    cells = []
    for label, prefer_value in policies:
        config = replace(
            _composite_config(scale, per_component).plain(),
            prefer_value_predictions=prefer_value,
        )
        for wl, seed in scale.runs():
            cells.append(speedup_cell(
                f"ablation2/{label}/{wl}/s{seed}",
                wl, scale.trace_length, _composite_spec(config), seed,
            ))
    report = resilient.sweep(cells)

    results = {}
    for label, _ in policies:
        ids = [f"ablation2/{label}/{wl}/s{seed}" for wl, seed in scale.runs()]
        probes = sum(_gather(report, ids, "paq_probes"))
        predictions = sum(_gather(report, ids, "predicted_loads"))
        results[label] = {
            "speedup": _mean(_gather(report, ids, "speedup")),
            "paq_probes": probes,
            "predictions": predictions,
            "probes_per_prediction": probes / predictions if predictions else 0.0,
        }
    return resilient.attach_failures({
        "scale": scale.name,
        "per_component_entries": per_component,
        "policies": results,
        "speedup_delta": (
            results["value-first"]["speedup"]
            - results["address-first"]["speedup"]
        ),
        "probe_reduction": (
            1.0 - results["value-first"]["paq_probes"]
            / results["address-first"]["paq_probes"]
            if results["address-first"]["paq_probes"] else 0.0
        ),
    }, report)


def ablation_confidence_tuning(
    scale: ExperimentScale = QUICK,
    per_component: int = 256,
    deltas: tuple[int, ...] = (0, -1, -2),
) -> dict:
    """Section III-B's tuning rationale: lower confidence bars raise
    coverage but cost accuracy, and the misprediction flushes eat the
    gains ("lower accuracy tends to decrease performance gains").
    """
    cells = []
    for delta in deltas:
        config = replace(
            _composite_config(scale, per_component).plain(),
            confidence_delta=delta,
        )
        for wl, seed in scale.runs():
            cells.append(speedup_cell(
                f"ablation3/d{delta}/{wl}/s{seed}",
                wl, scale.trace_length, _composite_spec(config), seed,
            ))
    report = resilient.sweep(cells)

    rows = {}
    for delta in deltas:
        ids = [f"ablation3/d{delta}/{wl}/s{seed}" for wl, seed in scale.runs()]
        rows[delta] = {
            "speedup": _mean(_gather(report, ids, "speedup")),
            "coverage": _mean(_gather(report, ids, "coverage")),
            "accuracy": _mean(_gather(report, ids, "accuracy")),
        }
    return resilient.attach_failures({
        "scale": scale.name,
        "per_component_entries": per_component,
        "deltas": rows,
    }, report)


def fig12_per_workload(scale: ExperimentScale = QUICK) -> dict:
    """Figure 12: per-workload composite (9.6KB) vs EVES (32KB)."""
    composite_config = _budget_config(scale, 1024)
    cells = []
    for wl in scale.workloads:
        for seed in scale.seeds:
            cells.append(speedup_cell(
                f"fig12/{wl}/s{seed}/composite",
                wl, scale.trace_length, _composite_spec(composite_config),
                seed,
            ))
            cells.append(speedup_cell(
                f"fig12/{wl}/s{seed}/eves",
                wl, scale.trace_length, _eves_spec("32kb", seed), seed,
            ))
    report = resilient.sweep(cells)

    per_workload = {}
    composite_wins = 0
    eves_wins = 0
    for wl in scale.workloads:
        composite_ids = [f"fig12/{wl}/s{seed}/composite" for seed in scale.seeds]
        eves_ids = [f"fig12/{wl}/s{seed}/eves" for seed in scale.seeds]
        composite_gains = _gather(report, composite_ids, "speedup")
        eves_gains = _gather(report, eves_ids, "speedup")
        composite_covs = _gather(report, composite_ids, "coverage")
        eves_covs = _gather(report, eves_ids, "coverage")
        composite_gain = _mean(composite_gains)
        eves_gain = _mean(eves_gains)
        if composite_gain > eves_gain + 1e-9:
            composite_wins += 1
        elif eves_gain > composite_gain + 1e-9:
            eves_wins += 1
        per_workload[wl] = {
            "composite_speedup": composite_gain,
            "eves_speedup": eves_gain,
            "composite_coverage": _mean(composite_covs),
            "eves_coverage": _mean(eves_covs),
        }
    return resilient.attach_failures({
        "scale": scale.name,
        "per_workload": per_workload,
        "composite_wins": composite_wins,
        "eves_wins": eves_wins,
        "average": {
            "composite_speedup": _mean(
                r["composite_speedup"] for r in per_workload.values()
            ),
            "eves_speedup": _mean(
                r["eves_speedup"] for r in per_workload.values()
            ),
            "composite_coverage": _mean(
                r["composite_coverage"] for r in per_workload.values()
            ),
            "eves_coverage": _mean(
                r["eves_coverage"] for r in per_workload.values()
            ),
        },
    }, report)
