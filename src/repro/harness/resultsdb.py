"""Content-addressed, on-disk experiment-results database.

Every sweep cell in this repository is a pure function of its inputs:
a picklable ``"module:function"`` reference plus a declarative spec
(workload name, trace length, seed, predictor configuration,
functional-vs-cycle mode).  The resilient supervisor's journal already
replays completed cells *within* a campaign, but every new campaign --
a different figure, a design-space search, a rerun on another day --
used to recompute identical cells from scratch.

This module persists cell results on disk keyed by a SHA-256
**fingerprint** of everything that determines the value:

* the cell function's dotted path (``run_speedup_cell`` vs
  ``run_functional_cell`` encodes the cycle-vs-functional mode);
* the canonicalized spec (dataclasses such as ``CompositeConfig`` are
  reduced via ``asdict``, tuples become lists, keys are sorted);
* the package version (``repro.__version__``);
* a registry of **per-module semantics versions**
  (:func:`register_semantics`): when a module changes the meaning of
  results -- the timing model, the functional evaluator, the trace
  generator -- it bumps its version and every stale entry simply stops
  matching.  No invalidation pass is ever needed.

Layered *under* :mod:`repro.harness.resilient`, the database turns
"rerun Figure 9" into "query the DB": the supervisor consults it
before dispatching a cell and writes back on success, so any cell ever
computed -- by a figure sweep, by ``repro-lvp explore``, by another
process -- is reused everywhere.

Design points (mirroring the trace store, ``repro.workloads.store``):

* **Activation.**  Off unless ``REPRO_RESULTS_DB_DIR`` names a
  directory (created on first save).  :func:`active_db` resolves the
  ambient handle once per distinct setting; :func:`reset_active_db`
  drops it (``clear_caches`` and tests).
* **Atomicity.**  Writes go to a ``.tmp-`` sibling and ``os.replace``
  into place; concurrent writers of the same fingerprint race to an
  identical file.
* **Corruption handling.**  Every entry carries a magic, a format
  version, its own fingerprint, and a SHA-256 checksum of the
  canonical value bytes.  A reader that finds anything wrong deletes
  the entry, counts a ``corrupt`` event, and reports a miss -- the
  caller recomputes and the write-back repairs the store.
* **In-process memo.**  A bounded LRU of parsed values sits above the
  disk entries so thousand-cell campaigns do not re-read and re-parse
  the same files.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.harness.journal import _jsonable

#: Environment variable naming the database directory (unset = disabled).
ENV_VAR = "REPRO_RESULTS_DB_DIR"

#: On-disk entry layout version; bump on any format change.
FORMAT_VERSION = 1

#: First line of every entry file (sanity check before JSON parsing).
_MAGIC = "repro-resultsdb"

_SUFFIX = ".res"

#: Most parsed values kept in the in-process memo.
MEMO_SIZE = 65536

# ----------------------------------------------------------------------
# Semantics registry and fingerprints
# ----------------------------------------------------------------------

_SEMANTICS: dict[str, int] = {}


def register_semantics(name: str, version: int) -> None:
    """Declare that module ``name`` computes results at ``version``.

    Modules whose logic determines cell values (the timing model, the
    functional evaluator, the trace generator) register themselves
    here; bumping the version changes every fingerprint that could
    depend on that module, so stale database entries stop matching
    without any invalidation pass.  Registration is idempotent.
    """
    _SEMANTICS[str(name)] = int(version)


def semantics_versions() -> dict[str, int]:
    """The current registry snapshot, sorted by module name."""
    return dict(sorted(_SEMANTICS.items()))


def _package_version() -> str:
    # Imported lazily: ``repro/__init__`` pulls in heavy subpackages
    # and importing it at module load would risk cycles.
    return importlib.import_module("repro").__version__


def cell_fingerprint(fn: str, spec: Any) -> str:
    """The content fingerprint of one cell's work.

    Digests the cell function path, the canonicalized spec, the
    package version, and the semantics registry.  The function's
    module is imported first so any semantics versions it registers
    are present before the registry is snapshotted -- a process that
    only *reads* the database still fingerprints identically to the
    one that wrote it.
    """
    module_name = fn.partition(":")[0]
    if module_name:
        importlib.import_module(module_name)
    payload = {
        "format": FORMAT_VERSION,
        "fn": fn,
        "spec": _jsonable(spec),
        "code_version": _package_version(),
        "semantics": semantics_versions(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _value_digest(value: Any) -> str:
    canonical = json.dumps(value, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# The database
# ----------------------------------------------------------------------

class CorruptEntryError(ValueError):
    """An on-disk entry failed structural or checksum validation."""


@dataclass
class DbStats:
    """Per-process counters for one :class:`ResultsDb` handle."""

    hits: int = 0
    memo_hits: int = 0
    misses: int = 0
    saves: int = 0
    save_errors: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict:
        """JSON-friendly snapshot of the counters."""
        return {
            "hits": self.hits, "memo_hits": self.memo_hits,
            "misses": self.misses, "saves": self.saves,
            "save_errors": self.save_errors, "corrupt": self.corrupt,
        }


#: Returned by :meth:`ResultsDb.lookup` on a miss (``None`` is a legal
#: stored value, so a sentinel distinguishes "absent" from "null").
_MISS = object()


@dataclass
class ResultsDb:
    """A directory of content-addressed experiment-result entries."""

    root: Path
    stats: DbStats = field(default_factory=DbStats)
    _memo: OrderedDict = field(default_factory=OrderedDict, repr=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def entry_path(self, fingerprint: str) -> Path:
        """Where the entry for ``fingerprint`` lives (may not exist).

        Entries fan out over 256 two-hex-digit subdirectories so
        thousand-config campaigns do not pile every file into one
        directory.
        """
        return self.root / fingerprint[:2] / f"{fingerprint}{_SUFFIX}"

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def lookup(self, fingerprint: str) -> tuple[bool, Any]:
        """``(hit, value)`` for ``fingerprint``.

        Checks the in-process memo first, then disk.  A structurally
        invalid or checksum-failing entry is deleted, counted in
        :attr:`DbStats.corrupt`, and reported as a miss -- the caller
        recomputes and the next :meth:`store` repairs the database.
        """
        memoized = self._memo.get(fingerprint, _MISS)
        if memoized is not _MISS:
            self._memo.move_to_end(fingerprint)
            self.stats.hits += 1
            self.stats.memo_hits += 1
            return True, memoized
        path = self.entry_path(fingerprint)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return False, None
        try:
            value = self._parse(raw, fingerprint)
        except (CorruptEntryError, ValueError, KeyError, TypeError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return False, None
        self.stats.hits += 1
        self._memoize(fingerprint, value)
        return True, value

    def store(self, fingerprint: str, value: Any, meta: dict | None = None) -> bool:
        """Persist ``value`` under ``fingerprint``, atomically.

        ``value`` must be JSON-serializable (sweep cells always are:
        the supervisor JSON round-trips results before recording them).
        ``meta`` is extra context stored alongside for humans reading
        the entry (the cell fn, code versions); it never affects the
        key.  Returns ``False`` -- and counts a ``save_error`` --
        instead of raising when the filesystem refuses the write: the
        database is an optimization, never a reason to fail a campaign.
        """
        record = {
            "magic": _MAGIC,
            "format": FORMAT_VERSION,
            "fingerprint": fingerprint,
            "value_sha256": _value_digest(value),
            "value": value,
            "meta": meta or {},
        }
        path = self.entry_path(fingerprint)
        tmp = path.with_name(f".tmp-{os.getpid()}-{path.name}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with tmp.open("w", encoding="utf-8") as fh:
                json.dump(record, fh, separators=(",", ":"))
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:
            self.stats.save_errors += 1
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        self.stats.saves += 1
        self._memoize(fingerprint, value)
        return True

    def lookup_cell(self, cell) -> tuple[bool, Any]:
        """:meth:`lookup` keyed by a resilient-harness cell's work."""
        return self.lookup(cell_fingerprint(cell.fn, cell.spec))

    def store_cell(self, cell, value: Any) -> bool:
        """:meth:`store` keyed by a resilient-harness cell's work."""
        return self.store(
            cell_fingerprint(cell.fn, cell.spec), value,
            meta={
                "fn": cell.fn,
                "code_version": _package_version(),
                "semantics": semantics_versions(),
            },
        )

    def _parse(self, raw: bytes, fingerprint: str) -> Any:
        """Decode one entry's bytes (raising on any inconsistency)."""
        record = json.loads(raw.decode("utf-8"))
        if not isinstance(record, dict):
            raise CorruptEntryError("entry is not a JSON object")
        if record.get("magic") != _MAGIC:
            raise CorruptEntryError("bad magic")
        if record.get("format") != FORMAT_VERSION:
            raise CorruptEntryError(
                f"unsupported format version {record.get('format')}"
            )
        if record.get("fingerprint") != fingerprint:
            raise CorruptEntryError("entry fingerprint does not match request")
        value = record.get("value")
        if _value_digest(value) != record.get("value_sha256"):
            raise CorruptEntryError("value checksum mismatch")
        return value

    def _memoize(self, fingerprint: str, value: Any) -> None:
        self._memo[fingerprint] = value
        self._memo.move_to_end(fingerprint)
        while len(self._memo) > MEMO_SIZE:
            self._memo.popitem(last=False)

    # ------------------------------------------------------------------
    # Inspection and maintenance (the ``repro-lvp cache`` subcommand)
    # ------------------------------------------------------------------

    def scan(self) -> dict:
        """On-disk stats: entry count and total bytes."""
        entries = 0
        total = 0
        if self.root.is_dir():
            for path in self.root.glob(f"??/*{_SUFFIX}"):
                entries += 1
                total += path.stat().st_size
        return {
            "path": str(self.root),
            "entries": entries,
            "total_bytes": total,
            "process_stats": self.stats.as_dict(),
        }

    def gc(self, dry_run: bool = False) -> dict:
        """Evict entries recorded under stale code/semantics versions.

        An entry is *stale* when its recorded ``meta.code_version``
        differs from the current package version, or when any module it
        recorded a semantics version for now registers a different one
        (each entry's cell function module is imported first so its
        registrations are live, exactly as :func:`cell_fingerprint`
        does).  Stale entries can never be served again -- their
        fingerprints stopped matching the moment a version bumped -- so
        they are pure dead weight on disk.  Entries written without
        version metadata (or whose metadata cannot be judged) are kept
        and counted as ``unversioned``.

        With ``dry_run`` nothing is deleted; the report's ``stale``
        count shows what a real pass would evict.
        """
        report = {
            "path": str(self.root),
            "scanned": 0,
            "stale": 0,
            "removed": 0,
            "kept": 0,
            "unversioned": 0,
            "dry_run": bool(dry_run),
        }
        if not self.root.is_dir():
            return report
        current_version = _package_version()
        for path in sorted(self.root.glob(f"??/*{_SUFFIX}")):
            report["scanned"] += 1
            stale = False
            unversioned = False
            try:
                record = json.loads(path.read_bytes().decode("utf-8"))
                meta = record.get("meta") if isinstance(record, dict) else None
                meta = meta if isinstance(meta, dict) else {}
                recorded_code = meta.get("code_version")
                recorded_semantics = meta.get("semantics")
                if recorded_code is None:
                    unversioned = True
                elif recorded_code != current_version:
                    stale = True
                elif isinstance(recorded_semantics, dict):
                    # Import the cell fn's module so the semantics it
                    # registers are present before comparing.
                    fn = meta.get("fn")
                    module_name = (
                        fn.partition(":")[0] if isinstance(fn, str) else ""
                    )
                    if module_name:
                        importlib.import_module(module_name)
                    current = semantics_versions()
                    stale = any(
                        current.get(name) != version
                        for name, version in recorded_semantics.items()
                    )
                else:
                    unversioned = True
            except (OSError, ValueError, ImportError):
                # Unreadable or unjudgeable: leave it for lookup()'s
                # corruption path rather than guessing here.
                unversioned = True
            if unversioned:
                report["unversioned"] += 1
                report["kept"] += 1
                continue
            if not stale:
                report["kept"] += 1
                continue
            report["stale"] += 1
            if dry_run:
                continue
            try:
                path.unlink()
                report["removed"] += 1
            except OSError:
                report["kept"] += 1
        if not dry_run and report["removed"]:
            self._memo.clear()
        return report

    def clear(self) -> int:
        """Delete every entry (and stale temp files); returns the count."""
        removed = 0
        if self.root.is_dir():
            for pattern in (f"??/*{_SUFFIX}", "??/.tmp-*", ".tmp-*"):
                for path in list(self.root.glob(pattern)):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        self._memo.clear()
        return removed


# ----------------------------------------------------------------------
# Ambient database handle
# ----------------------------------------------------------------------

_active: ResultsDb | None = None
_active_root: str | None = None


def active_db() -> ResultsDb | None:
    """The process-wide database named by ``REPRO_RESULTS_DB_DIR``.

    Returns ``None`` when the variable is unset or empty.  The handle
    (with its memo and per-process :class:`DbStats`) persists until the
    variable's value changes or :func:`reset_active_db` is called.
    """
    global _active, _active_root
    root = os.environ.get(ENV_VAR) or None
    if root != _active_root:
        _active_root = root
        _active = ResultsDb(Path(root)) if root else None
    return _active


def reset_active_db() -> None:
    """Drop the ambient handle (fresh memo and stats on next access)."""
    global _active, _active_root
    _active = None
    _active_root = None
