"""Experiment harness: regenerates every table and figure of the paper.

Two evaluation modes are provided:

* :mod:`repro.harness.functional` -- a fast program-order simulator
  that measures predictor coverage/accuracy/overlap without timing.
  Used for Figure 2 (oracle breakdown), Figure 4 (overlap), Figure 7
  (smart-training breakdown), Table V (Listing-1 warm-up), and the
  coverage half of Figures 11/12.
* :mod:`repro.pipeline` -- the cycle-level core model, used for every
  speedup measurement.

:mod:`repro.harness.experiments` has one entry point per paper
artifact; :mod:`repro.harness.formatting` renders the results as the
text tables the benchmark harness prints.
"""

from repro.harness.functional import FunctionalResult, run_functional
from repro.harness.presets import ExperimentScale, FULL, QUICK, SMOKE, scale_from_env
from repro.harness.resilient import (
    Cell,
    CellOutcome,
    ExecutionPolicy,
    RetryPolicy,
    SweepReport,
    run_cells,
    use_policy,
)
from repro.harness.runner import baseline_result, run_predictor, workload_trace

__all__ = [
    "Cell",
    "CellOutcome",
    "ExecutionPolicy",
    "ExperimentScale",
    "FULL",
    "FunctionalResult",
    "QUICK",
    "RetryPolicy",
    "SMOKE",
    "SweepReport",
    "baseline_result",
    "run_cells",
    "run_functional",
    "run_predictor",
    "scale_from_env",
    "use_policy",
    "workload_trace",
]
