"""Fast program-order (functional) predictor evaluation.

Runs a predictor assembly over a trace without the timing model:
histories update in program order, stores apply to memory immediately,
and each load is predicted, validated, and trained in sequence.  This
measures coverage, accuracy, and overlap -- the quantities behind
Figures 2, 4, 7, Table V, and the coverage columns of Figures 11/12 --
at several times the speed of the cycle model.

Functional mode has no in-flight window: address-prediction probes see
all older stores (no conflicting-store mispredictions) and
``inflight_same_pc`` is always zero.  Timing-sensitive effects need
:func:`repro.pipeline.simulate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.branch.history import HistorySet
from repro.isa.instruction import OpClass
from repro.isa.trace import Trace
from repro.memory.image import MemoryImage
from repro.pipeline.vp import ValuePredictorHost
from repro.predictors.types import LoadOutcome, LoadProbe, PredictionKind

#: Semantics version of the functional evaluator, registered with the
#: results database (:mod:`repro.harness.resultsdb`).  Bump whenever a
#: change alters functional counters (coverage/accuracy/overlap
#: definitions, training order); backend-only speedups that stay
#: bit-exact leave it alone.
FUNCTIONAL_SEMANTICS_VERSION = 1


@dataclass
class FunctionalResult:
    """Counters from one functional run."""

    workload: str
    instructions: int
    loads: int = 0
    predicted_loads: int = 0
    correct_predictions: int = 0
    #: histogram[k] = predictable loads with exactly k confident components
    confident_histogram: list[int] = field(default_factory=lambda: [0] * 5)
    per_component_confident: dict = field(default_factory=dict)
    per_component_correct: dict = field(default_factory=dict)
    #: loads where >=2 components were confident (the overlap cases)
    multi_confident_loads: int = 0
    #: ...and among those, loads where their speculative values differed
    #: (the paper: "highly-confident predictors disagree less than
    #: 0.03% of the time")
    disagreements: int = 0

    @property
    def coverage(self) -> float:
        return self.predicted_loads / self.loads if self.loads else 0.0

    @property
    def accuracy(self) -> float:
        # A predictor that never predicts has demonstrated no accuracy;
        # reporting 1.0 here made never-predicting configs look perfect
        # in sweeps and reports.
        if not self.predicted_loads:
            return 0.0
        return self.correct_predictions / self.predicted_loads

    @property
    def disagreement_fraction(self) -> float:
        """Disagreements per multi-confident load."""
        if not self.multi_confident_loads:
            return 0.0
        return self.disagreements / self.multi_confident_loads


def run_functional(
    trace: Trace,
    predictor: ValuePredictorHost,
    tick_epochs: bool = True,
    backend: str = "auto",
) -> FunctionalResult:
    """Evaluate ``predictor`` over ``trace`` in program order.

    ``backend`` selects the execution strategy:

    - ``"object"``: the per-instruction object interpreter below -- the
      bit-exact oracle.
    - ``"vector"``: the columnar batch backend
      (:mod:`repro.harness.functional_vec`); raises ``ValueError`` if
      the trace/predictor combination is unsupported.
    - ``"auto"``: the vector backend when supported, else the object
      path.  Both produce identical :class:`FunctionalResult`\\ s and
      identical final predictor state.
    """
    if backend not in ("auto", "object", "vector"):
        raise ValueError(f"unknown functional backend: {backend!r}")
    if backend != "object":
        from repro.harness import functional_vec

        if functional_vec.vector_unsupported_reason(trace, predictor) is None:
            return functional_vec.run_functional_vec(
                trace, predictor, tick_epochs=tick_epochs
            )
        if backend == "vector":
            raise ValueError(
                "vector backend unsupported here: "
                f"{functional_vec.vector_unsupported_reason(trace, predictor)}"
            )
    histories = HistorySet()
    bind = getattr(predictor, "bind_history", None)
    if bind is not None:
        bind(histories)
    mem = (
        trace.initial_memory.copy()
        if isinstance(trace.initial_memory, MemoryImage)
        else MemoryImage()
    )
    result = FunctionalResult(workload=trace.name, instructions=len(trace))

    for inst in trace.instructions:
        op = inst.op
        if op.is_branch:
            if op is OpClass.BRANCH_COND:
                histories.push_branch(inst.pc, inst.taken)
            else:
                histories.push_unconditional(inst.pc)
        elif op is OpClass.STORE:
            mem.write(inst.addr, inst.size, inst.value)
            histories.push_memory(inst.pc)
        elif op is OpClass.LOAD:
            if inst.predictable:
                result.loads += 1
                probe = LoadProbe(
                    pc=inst.pc,
                    direction_history=histories.direction,
                    path_history=histories.path,
                    load_path_history=histories.load_path,
                    inflight_same_pc=0,
                    folded=histories.folded_values(),
                )
                decision = predictor.predict(probe)
                correctness = {}
                speculative_values = []
                for name, prediction in decision.confident.items():
                    if prediction.kind is PredictionKind.VALUE:
                        speculative = prediction.value
                    else:
                        speculative = mem.read(prediction.addr, prediction.size)
                    speculative_values.append(speculative)
                    correctness[name] = speculative == inst.value
                if len(speculative_values) >= 2:
                    result.multi_confident_loads += 1
                    if len(set(speculative_values)) > 1:
                        result.disagreements += 1
                count = len(decision.confident)
                result.confident_histogram[min(count, 4)] += 1
                for name in decision.confident:
                    result.per_component_confident[name] = (
                        result.per_component_confident.get(name, 0) + 1
                    )
                    if correctness[name]:
                        result.per_component_correct[name] = (
                            result.per_component_correct.get(name, 0) + 1
                        )
                if decision.chosen is not None:
                    result.predicted_loads += 1
                    if correctness[decision.chosen.component]:
                        result.correct_predictions += 1
                predictor.validate_and_train(
                    decision,
                    LoadOutcome(
                        pc=inst.pc, addr=inst.addr, size=inst.size,
                        value=inst.value,
                        direction_history=probe.direction_history,
                        path_history=probe.path_history,
                        load_path_history=probe.load_path_history,
                        folded=probe.folded,
                    ),
                    correctness,
                )
            histories.push_memory(inst.pc)
        if tick_epochs:
            predictor.tick_instructions(1)
    return result
