"""Plain-text rendering of experiment results.

The benchmark harness and the CLI print these tables; they mirror the
rows/series the paper reports so measured numbers can be placed next to
the published ones (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable


def render_table(headers: list[str], rows: Iterable[Iterable]) -> str:
    """Monospace table with per-column width fitting."""
    materialized = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    rule = "  ".join("-" * w for w in widths)
    out = [line(headers), rule]
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def pct(value: float) -> str:
    """Format a fraction as a signed percentage."""
    return f"{value * 100:+.2f}%"


def frac(value: float) -> str:
    """Format a fraction as an unsigned percentage."""
    return f"{value * 100:.1f}%"


def format_fig3(result: dict) -> str:
    """Render the Figure 3 component-speedup sweep."""
    sizes = result["sizes"]
    rows = [
        [name.upper()] + [pct(result["speedup"][name][s]) for s in sizes]
        for name in result["speedup"]
    ]
    return "Figure 3 -- component speedup vs entries\n" + render_table(
        ["predictor"] + [f"{s}e" for s in sizes], rows
    )


def format_fig5(result: dict) -> str:
    """Render the Figure 5 composite-vs-component table."""
    rows = [
        [
            total, pct(row["composite"]), pct(row["best_component"]),
            row["best_component_name"].upper(), pct(row["advantage"]),
        ]
        for total, row in result["totals"].items()
    ]
    return "Figure 5 -- composite vs best component\n" + render_table(
        ["total entries", "composite", "best component", "which", "advantage"],
        rows,
    )


def format_fig10(result: dict) -> str:
    """Render the Figure 10 MAX-composite comparison."""
    rows = [
        [
            total, f'{row["storage_kib"]}KiB', pct(row["composite"]),
            pct(row["best_component"]), row["best_component_name"].upper(),
            f'{row["improvement"] * 100:+.0f}%',
        ]
        for total, row in result["totals"].items()
    ]
    return (
        "Figure 10 -- best composite vs best component (paper: +54%..+74%)\n"
        + render_table(
            ["total", "storage", "composite", "component", "which",
             "improvement"],
            rows,
        )
    )


def format_fig11(result: dict) -> str:
    """Render the Figure 11 composite-vs-EVES table."""
    rows = [
        [label, pct(row["speedup"]), frac(row["coverage"])]
        for label, row in result["contenders"].items()
    ]
    summary = result["composite96_vs_eves32"]
    return (
        "Figure 11 -- composite vs EVES\n"
        + render_table(["predictor", "speedup", "coverage"], rows)
        + "\ncomposite(9.6KB) vs EVES(32KB): "
        + f"speedup {summary['speedup_increase'] * 100:+.0f}%, "
        + f"coverage {summary['coverage_increase'] * 100:+.0f}% "
        + "(paper: >+50% and +133%)"
    )


def format_table5(result: dict) -> str:
    """Render the Table V warm-up matrix."""
    table = result["first_predicted_inner_iteration"]
    outer_m = result["outer_m"]
    show = [o for o in (0, 1, 2, 4, 8, 16) if o < outer_m]
    rows = [
        [name.upper()] + [
            "-" if table[name][o] is None else table[name][o] for o in show
        ]
        for name in table
    ]
    return (
        "Table V -- first predicted inner iteration (None/'-' = never)\n"
        + render_table(["predictor"] + [f"o={o}" for o in show], rows)
    )


def format_table6(result: dict) -> str:
    """Render the Table VI best-allocation table."""
    rows = []
    for total, info in result["budgets"].items():
        best = info["best"]
        rows.append([
            total, best["allocation"], f'{best["storage_kib"]}KiB',
            pct(best["speedup"]),
            "yes" if info["best_is_homogeneous"] else "no",
        ])
    return "Table VI -- best allocation per budget\n" + render_table(
        ["total", "(LVP,SAP,CVP,CAP)", "storage", "speedup", "homogeneous?"],
        rows,
    )
