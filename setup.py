"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs (which must build a wheel) fail.  This shim
lets ``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``pip install -e .`` on modern setuptools) work everywhere.
"""

from setuptools import setup

setup()
