"""Tests for the crash-safe JSONL journal and atomic JSON writes."""

import json
import os

import pytest

from repro.harness.journal import (
    Journal,
    JournalError,
    atomic_write_json,
    stable_digest,
)


class TestStableDigest:
    def test_deterministic_and_order_insensitive(self):
        assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})
        assert stable_digest({"a": 1}) != stable_digest({"a": 2})

    def test_handles_dataclasses_and_tuples(self):
        from repro.composite.config import CompositeConfig

        a = CompositeConfig().homogeneous(256)
        b = CompositeConfig().homogeneous(256)
        c = CompositeConfig().homogeneous(512)
        assert stable_digest(a) == stable_digest(b)
        assert stable_digest(a) != stable_digest(c)
        assert stable_digest((1, 2)) == stable_digest([1, 2])


class TestAtomicWriteJson:
    def test_writes_valid_json(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"x": [1, 2, 3]})
        assert json.loads(target.read_text()) == {"x": [1, 2, 3]}

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old garbage")
        atomic_write_json(target, {"fresh": True})
        assert json.loads(target.read_text()) == {"fresh": True}

    def test_no_tmp_droppings_on_success(self, tmp_path):
        atomic_write_json(tmp_path / "out.json", {"x": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_unserializable_payload_leaves_no_partial_target(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text('{"old": true}')
        with pytest.raises(ValueError, match="[Cc]ircular"):
            # default=str handles most things; a circular structure
            # still fails inside json.dump after bytes were written.
            circular = {}
            circular["self"] = circular
            atomic_write_json(target, circular)
        assert json.loads(target.read_text()) == {"old": True}


class TestJournal:
    def test_append_read_roundtrip(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.start({"type": "campaign", "campaign": "c1", "cells": 2})
        journal.append({"type": "cell", "id": "a", "status": "ok", "value": 1})
        journal.append({"type": "cell", "id": "b", "status": "ok", "value": 2})
        journal.close()
        records = list(journal.read())
        assert [r["type"] for r in records] == ["campaign", "cell", "cell"]
        assert journal.corrupt_lines == 0

    def test_load_completed_last_record_wins(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.start({"type": "campaign", "campaign": "c1", "cells": 1})
        journal.append({"type": "cell", "id": "a", "status": "ok", "value": 1})
        journal.append({"type": "cell", "id": "a", "status": "failed",
                        "error": "x"})
        journal.append({"type": "cell", "id": "a", "status": "ok", "value": 3})
        journal.close()
        assert journal.load_completed("c1") == {"a": 3}

    def test_campaign_mismatch_rejected(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.start({"type": "campaign", "campaign": "c1", "cells": 0})
        journal.close()
        with pytest.raises(JournalError, match="campaign"):
            journal.load_completed("other")

    def test_truncated_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.start({"type": "campaign", "campaign": "c1", "cells": 2})
        journal.append({"type": "cell", "id": "a", "status": "ok", "value": 1})
        journal.close()
        # Simulate a crash mid-append: half a record, no newline.
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"type": "cell", "id": "b", "sta')
        assert journal.load_completed("c1") == {"a": 1}
        assert journal.corrupt_lines == 1

    def test_open_append_after_torn_write_starts_clean_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.start({"type": "campaign", "campaign": "c1", "cells": 2})
        journal.append_corrupted(
            {"type": "cell", "id": "a", "status": "ok", "value": 1}
        )
        journal.close()
        journal.open_append()
        journal.append({"type": "cell", "id": "b", "status": "ok", "value": 2})
        journal.close()
        assert journal.load_completed("c1") == {"b": 2}
        assert journal.corrupt_lines >= 1

    def test_missing_file_reads_empty(self, tmp_path):
        journal = Journal(tmp_path / "missing.jsonl")
        assert list(journal.read()) == []
        assert journal.load_completed("c1") == {}

    def test_append_requires_open(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        with pytest.raises(JournalError):
            journal.append({"type": "cell"})

    def test_blank_and_garbage_lines_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"type": "campaign", "campaign": "c1", "cells": 1}\n'
            "\n"
            "not json at all\n"
            '[1, 2, 3]\n'
            '{"type": "cell", "id": "a", "status": "ok", "value": 9}\n'
        )
        journal = Journal(path)
        assert journal.load_completed("c1") == {"a": 9}
        assert journal.corrupt_lines == 2
