"""Tests for the TAGE conditional branch predictor."""

from repro.branch.history import HistorySet
from repro.branch.tage import TageConfig, TagePredictor
from repro.common.rng import DeterministicRng


def _run_pattern(predictor, pattern, repeats, train=True):
    """Feed a repeating taken/not-taken pattern; return accuracy."""
    histories = HistorySet()
    correct = 0
    total = 0
    pc = 0x4000
    for _ in range(repeats):
        for taken in pattern:
            ctx = predictor.predict(pc, histories.snapshot())
            if ctx.taken == taken:
                correct += 1
            total += 1
            if train:
                predictor.train(pc, taken, ctx)
            histories.push_branch(pc, taken)
    return correct / total


class TestConfig:
    def test_history_lengths_geometric_and_increasing(self):
        lengths = TageConfig().history_lengths()
        assert lengths[0] == 5
        assert lengths[-1] == 130
        assert all(b > a for a, b in zip(lengths, lengths[1:]))

    def test_single_table(self):
        assert TageConfig(num_tables=1).history_lengths() == (5,)

    def test_storage_accounting(self):
        predictor = TagePredictor(TageConfig())
        bits = predictor.storage_bits()
        # ~32KB class predictor: between 3KB and 64KB.
        assert 3 * 8192 < bits < 64 * 8192


class TestLearning:
    def test_always_taken(self):
        predictor = TagePredictor(rng=DeterministicRng(0))
        accuracy = _run_pattern(predictor, [True], repeats=300)
        assert accuracy > 0.95

    def test_loop_exit_pattern(self):
        """T T T N repeated: needs history, beats bimodal's ~75%."""
        predictor = TagePredictor(rng=DeterministicRng(0))
        accuracy = _run_pattern(
            predictor, [True, True, True, False], repeats=400
        )
        assert accuracy > 0.90

    def test_long_period_pattern(self):
        predictor = TagePredictor(rng=DeterministicRng(0))
        pattern = [True] * 7 + [False]
        accuracy = _run_pattern(predictor, pattern, repeats=300)
        assert accuracy > 0.85

    def test_alternating(self):
        predictor = TagePredictor(rng=DeterministicRng(0))
        accuracy = _run_pattern(predictor, [True, False], repeats=400)
        assert accuracy > 0.9


class TestMechanics:
    def test_prediction_is_pure(self):
        """predict() must not mutate state."""
        predictor = TagePredictor(rng=DeterministicRng(0))
        histories = HistorySet()
        snap = histories.snapshot()
        a = predictor.predict(0x1000, snap)
        b = predictor.predict(0x1000, snap)
        assert a == b

    def test_allocation_on_mispredict(self):
        predictor = TagePredictor(rng=DeterministicRng(0))
        histories = HistorySet()
        # Deliberately train the opposite of the base prediction so a
        # tagged entry is allocated.
        for _ in range(50):
            snap = histories.snapshot()
            ctx = predictor.predict(0x2000, snap)
            predictor.train(0x2000, not ctx.taken, ctx)
            histories.push_branch(0x2000, not ctx.taken)
        allocated = sum(
            1 for table in predictor._tables for e in table if e.tag
        )
        assert allocated > 0
