"""Tests for the predictor host adapters (NoPredictor, single, EVES)."""

from conftest import make_outcome, make_probe

from repro.composite.composite import CompositeDecision
from repro.eves import eves_8kb
from repro.pipeline.vp import (
    EvesAdapter,
    NoPredictor,
    SingleComponentAdapter,
    ValuePredictorHost,
)
from repro.predictors import make_component


class TestNoPredictor:
    def test_never_predicts(self):
        host = NoPredictor()
        decision = host.predict(make_probe())
        assert decision.chosen is None and not decision.confident
        assert host.storage_bits() == 0

    def test_satisfies_protocol(self):
        assert isinstance(NoPredictor(), ValuePredictorHost)


class TestSingleComponentAdapter:
    def test_decision_shape(self):
        adapter = SingleComponentAdapter(make_component("lvp", 256))
        for _ in range(200):
            adapter.component.train(make_outcome(pc=0x1000, value=9))
        decision = adapter.predict(make_probe(pc=0x1000))
        assert isinstance(decision, CompositeDecision)
        assert decision.chosen is not None
        assert set(decision.confident) == {"lvp"}

    def test_stats_track_usage(self):
        adapter = SingleComponentAdapter(make_component("lvp", 256))
        outcome = make_outcome(pc=0x1000, value=9)
        for _ in range(200):
            decision = adapter.predict(make_probe(pc=0x1000))
            correctness = {n: True for n in decision.confident}
            adapter.validate_and_train(decision, outcome, correctness)
        assert adapter.stats.loads == 200
        assert 0 < adapter.stats.predicted_loads < 200
        assert adapter.stats.accuracy == 1.0

    def test_wrong_prediction_penalizes(self):
        adapter = SingleComponentAdapter(make_component("cap", 256))
        outcome = make_outcome(pc=0x1000, addr=0x8000, load_path=3)
        for _ in range(20):
            decision = adapter.predict(make_probe(pc=0x1000, load_path=3))
            adapter.validate_and_train(
                decision, outcome, {n: True for n in decision.confident}
            )
        decision = adapter.predict(make_probe(pc=0x1000, load_path=3))
        assert decision.chosen is not None
        adapter.validate_and_train(decision, outcome, {"cap": False})
        assert adapter.predict(make_probe(pc=0x1000, load_path=3)).chosen is None

    def test_satisfies_protocol(self):
        adapter = SingleComponentAdapter(make_component("sap", 64))
        assert isinstance(adapter, ValuePredictorHost)


class TestEvesAdapter:
    def test_decision_and_training(self):
        adapter = EvesAdapter(eves_8kb())
        outcome = make_outcome(pc=0x1000, value=5)
        for _ in range(300):
            decision = adapter.predict(make_probe(pc=0x1000))
            adapter.validate_and_train(
                decision, outcome, {n: True for n in decision.confident}
            )
        decision = adapter.predict(make_probe(pc=0x1000))
        assert decision.chosen is not None
        assert decision.chosen.component == "eves"
        assert adapter.storage_bits() == adapter.eves.storage_bits()

    def test_satisfies_protocol(self):
        assert isinstance(EvesAdapter(eves_8kb()), ValuePredictorHost)
