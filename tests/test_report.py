"""Tests for the report generator."""

import pytest

from repro.harness.presets import ExperimentScale
from repro.harness.report import REPORT_SECTIONS, generate_report

TINY = ExperimentScale(name="tiny", workloads=("coremark",),
                       trace_length=4000)


class TestReport:
    def test_static_sections_render(self):
        report = generate_report(TINY, sections=("table1", "table4"))
        assert "# Reproduction report" in report
        assert "## table1" in report
        assert "## table4" in report

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError, match="unknown report sections"):
            generate_report(TINY, sections=("table999",))

    def test_progress_callback(self):
        seen = []
        generate_report(TINY, sections=("table1",), progress=seen.append)
        assert seen == ["table1"]

    def test_all_experiments_have_sections(self):
        from repro.cli import _EXPERIMENTS

        assert set(_EXPERIMENTS) <= set(REPORT_SECTIONS)

    def test_timing_section_renders(self):
        report = generate_report(TINY, sections=("fig5",))
        assert "Figure 5" in report
