"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import Cache, CacheConfig


def _small_cache(assoc=2, sets=4, block=64):
    return Cache(CacheConfig("T", sets * assoc * block, assoc, block, 1))


class TestConfigValidation:
    def test_valid(self):
        cfg = CacheConfig("L1", 64 * 1024, 4, 64, 2)
        assert cfg.num_sets == 256

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 1000, 3, 64, 1)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 3 * 64 * 2, 2, 64, 1)


class TestAccessBehaviour:
    def test_miss_then_hit(self):
        cache = _small_cache()
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True
        assert cache.access(0x1004) is True  # same block

    def test_lru_eviction(self):
        cache = _small_cache(assoc=2, sets=1, block=64)
        cache.access(0 * 64)
        cache.access(1 * 64)
        cache.access(0 * 64)        # refresh block 0
        cache.access(2 * 64)        # evicts block 1 (LRU)
        assert cache.access(0 * 64) is True
        assert cache.access(1 * 64) is False

    def test_write_marks_dirty_and_writeback_counted(self):
        cache = _small_cache(assoc=1, sets=1, block=64)
        cache.access(0x0, is_write=True)
        cache.access(0x40)  # evicts the dirty block
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = _small_cache(assoc=1, sets=1, block=64)
        cache.access(0x0)
        cache.access(0x40)
        assert cache.stats.writebacks == 0

    def test_stats(self):
        cache = _small_cache()
        cache.access(0x0)
        cache.access(0x0)
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5


class TestLookupAndFill:
    def test_lookup_does_not_allocate(self):
        cache = _small_cache()
        assert cache.lookup(0x2000) is False
        assert cache.lookup(0x2000) is False  # still absent
        assert cache.stats.accesses == 0

    def test_fill_installs_without_demand_stats(self):
        cache = _small_cache()
        cache.fill(0x3000, from_prefetch=True)
        assert cache.lookup(0x3000) is True
        assert cache.stats.accesses == 0
        assert cache.stats.prefetch_fills == 1

    def test_fill_idempotent(self):
        cache = _small_cache()
        cache.fill(0x3000)
        cache.fill(0x3000)
        assert cache.lookup(0x3000)

    def test_invalidate_all(self):
        cache = _small_cache()
        cache.access(0x1000)
        cache.invalidate_all()
        assert cache.lookup(0x1000) is False


class TestAgainstReferenceModel:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=15), max_size=200))
    def test_matches_lru_reference(self, block_ids):
        """Hit/miss sequence must match a straightforward LRU model."""
        assoc, sets, block = 2, 2, 64
        cache = _small_cache(assoc=assoc, sets=sets, block=block)
        reference: dict[int, list[int]] = {s: [] for s in range(sets)}
        for block_id in block_ids:
            addr = block_id * block
            set_idx = block_id % sets
            tag = block_id // sets
            ways = reference[set_idx]
            expect_hit = tag in ways
            if expect_hit:
                ways.remove(tag)
            elif len(ways) >= assoc:
                ways.pop()
            ways.insert(0, tag)
            assert cache.access(addr) is expect_hit
