"""Tests for the branch target buffer."""

import pytest

from repro.branch.btb import BranchTargetBuffer
from repro.branch.unit import BranchUnit
from repro.isa.instruction import Instruction, OpClass


class TestBtbStructure:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=64, associativity=2)
        assert btb.lookup_and_allocate(0x1000) is False
        assert btb.lookup_and_allocate(0x1000) is True

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(entries=2, associativity=2)  # one set
        btb.lookup_and_allocate(0x1000)
        btb.lookup_and_allocate(0x2000)
        btb.lookup_and_allocate(0x1000)   # refresh
        btb.lookup_and_allocate(0x3000)   # evicts 0x2000
        assert btb.lookup_and_allocate(0x1000) is True
        assert btb.lookup_and_allocate(0x2000) is False

    def test_hit_rate(self):
        btb = BranchTargetBuffer(64, 2)
        btb.lookup_and_allocate(0x1000)
        btb.lookup_and_allocate(0x1000)
        assert btb.hit_rate == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=10, associativity=3)

    def test_storage_positive(self):
        assert BranchTargetBuffer().storage_bits() > 0


class TestBranchUnitIntegration:
    def test_first_taken_branch_bubbles_then_warm(self):
        unit = BranchUnit()
        inst = Instruction(pc=0x1000, op=OpClass.BRANCH_DIRECT, taken=True,
                           target=0x2000)
        first = unit.fetch_branch(inst)
        second = unit.fetch_branch(inst)
        assert first.fetch_bubble == BranchUnit.BTB_MISS_PENALTY
        assert second.fetch_bubble == 0

    def test_not_taken_branch_never_bubbles(self):
        unit = BranchUnit()
        inst = Instruction(pc=0x1000, op=OpClass.BRANCH_COND, taken=False,
                           target=0x2000)
        for _ in range(5):
            outcome = unit.fetch_branch(inst)
            unit.resolve(inst, outcome)
            assert outcome.fetch_bubble == 0

    def test_predicted_not_taken_skips_btb(self):
        """A cold conditional branch predicted not-taken must not pay a
        BTB bubble even when it is actually taken (the front end did
        not try to follow it; the cost lands on the mispredict)."""
        unit = BranchUnit()
        inst = Instruction(pc=0x1000, op=OpClass.BRANCH_COND, taken=True,
                           target=0x2000)
        outcome = unit.fetch_branch(inst)
        if outcome.mispredicted:
            assert outcome.fetch_bubble == 0
