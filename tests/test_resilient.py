"""Tests for the fault-tolerant sweep engine (repro.harness.resilient).

Covers the acceptance scenarios of the resilient harness: fail-once
faults retried with backoff, hangs reaped (cooperatively inline, by
killing the worker in pool mode), campaigns killed mid-run and resumed
from the journal with byte-identical results, and terminal failures
degrading to partial results instead of aborting the sweep.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness import resilient
from repro.harness.journal import JournalError
from repro.harness.resilient import (
    Cell,
    CellTimeout,
    ExecutionPolicy,
    FAULT_PLAN_ENV,
    FaultInjected,
    FaultRule,
    RetryPolicy,
    parse_fault_plan,
    run_cells,
)
from repro.harness.runner import speedup_cell

REPO = Path(__file__).resolve().parent.parent

#: Retry policy with no real sleeping, for fast tests.
FAST_RETRY = RetryPolicy(max_retries=2, backoff=0.001, jitter=0.0)


def echo_cells(prefix: str, count: int = 3) -> list[Cell]:
    names = "abcdefghij"[:count]
    return [
        Cell(id=f"{prefix}/{n}", fn="_cells:echo_cell", spec={"x": i})
        for i, n in enumerate(names)
    ]


def _subprocess_env(**extra: str) -> dict:
    env = dict(os.environ)
    env.pop(FAULT_PLAN_ENV, None)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src"), str(REPO / "tests")]
    )
    env.update(extra)
    return env


class TestFaultPlanParsing:
    def test_basic_clause(self):
        assert parse_fault_plan("fig5/*:fail") == (
            FaultRule(pattern="fig5/*", action="fail", count=1),
        )

    def test_count_and_multiple_clauses(self):
        rules = parse_fault_plan("a:hang:3; b/*:crash ;c:corrupt-journal")
        assert rules == (
            FaultRule("a", "hang", 3),
            FaultRule("b/*", "crash", 1),
            FaultRule("c", "corrupt-journal", 1),
        )

    def test_pattern_may_contain_colons(self):
        (rule,) = parse_fault_plan("ns:cell/1:fail:2")
        assert rule == FaultRule("ns:cell/1", "fail", 2)

    def test_empty_plan(self):
        assert parse_fault_plan(None) == ()
        assert parse_fault_plan("  ;  ") == ()

    def test_bad_action_rejected(self):
        with pytest.raises(ValueError, match="bad fault clause"):
            parse_fault_plan("cell:explode")


class TestRetryPolicy:
    def test_deterministic_jitter(self):
        policy = RetryPolicy(backoff=0.1, backoff_factor=2.0, jitter=0.5)
        d0 = policy.delay("fig5/a", 0)
        assert d0 == policy.delay("fig5/a", 0)
        assert d0 != policy.delay("fig5/b", 0)
        assert 0.1 <= d0 <= 0.15
        assert 0.2 <= policy.delay("fig5/a", 1) <= 0.3

    def test_transient_classification(self):
        policy = RetryPolicy()
        assert policy.is_transient(CellTimeout("t"))
        assert policy.is_transient(FaultInjected("f"))
        assert not policy.is_transient(ValueError("logic bug"))
        assert RetryPolicy(retry_all=True).is_transient(ValueError("x"))


class TestInlineSweep:
    def test_basic_sweep(self):
        report = run_cells(echo_cells("sweep"), ExecutionPolicy())
        assert report.ok
        assert report.values() == {
            "sweep/a": {"doubled": 0, "tag": ""},
            "sweep/b": {"doubled": 2, "tag": ""},
            "sweep/c": {"doubled": 4, "tag": ""},
        }
        assert all(o.attempts == 1 for o in report.outcomes.values())

    def test_duplicate_ids_rejected(self):
        cells = [
            Cell(id="dup", fn="_cells:echo_cell", spec={"x": 1}),
            Cell(id="dup", fn="_cells:echo_cell", spec={"x": 2}),
        ]
        with pytest.raises(ValueError, match="duplicate cell ids"):
            run_cells(cells, ExecutionPolicy())

    def test_deterministic_failure_not_retried(self):
        cells = echo_cells("det") + [
            Cell(id="det/boom", fn="_cells:boom_cell", spec={"x": 9}),
        ]
        report = run_cells(cells, ExecutionPolicy(retry=FAST_RETRY))
        assert not report.ok
        (failure,) = report.failures
        assert failure.id == "det/boom"
        assert failure.attempts == 1  # no retry for a ValueError
        assert "deterministic boom" in failure.error
        assert len(report.values()) == 3  # the sweep still finished

    def test_fail_once_fault_retried(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "flaky/b:fail")
        report = run_cells(
            echo_cells("flaky"), ExecutionPolicy(retry=FAST_RETRY)
        )
        assert report.ok
        assert report.outcomes["flaky/b"].attempts == 2
        assert report.outcomes["flaky/a"].attempts == 1

    def test_retry_exhaustion_degrades_gracefully(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "gone/b:fail:99")
        report = run_cells(
            echo_cells("gone"),
            ExecutionPolicy(retry=RetryPolicy(max_retries=1, backoff=0.001)),
        )
        assert not report.ok
        (failure,) = report.failures
        assert failure.id == "gone/b"
        assert failure.attempts == 2  # initial + one retry
        summary = report.failure_summary()
        assert summary["failed_cells"] == 1
        assert summary["total_cells"] == 3
        assert summary["cells"][0]["id"] == "gone/b"
        assert set(report.values()) == {"gone/a", "gone/c"}

    def test_hang_hits_cooperative_deadline(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "hang/a:hang")
        started = time.monotonic()
        report = run_cells(
            echo_cells("hang", 2),
            ExecutionPolicy(timeout=0.2, retry=FAST_RETRY),
        )
        assert report.ok
        assert report.outcomes["hang/a"].attempts == 2
        assert time.monotonic() - started < 5.0

    def test_ambient_policy_via_sweep(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "amb/*:fail:99")
        with resilient.use_policy(
            ExecutionPolicy(retry=RetryPolicy(max_retries=0))
        ):
            report = resilient.sweep(echo_cells("amb", 2))
        assert len(report.failures) == 2
        payload = resilient.attach_failures({"x": 1}, report)
        assert payload["failures"]["failed_cells"] == 2
        # Default ambient policy is restored on exit.
        assert resilient.current_policy().workers == 0
        assert resilient.current_policy().retry.max_retries == 2


class TestPipelineIntegration:
    def test_speedup_cell_runs_real_simulation(self):
        cell = speedup_cell("pipe/ok", "coremark", 2000, {"kind": "none"})
        report = run_cells([cell], ExecutionPolicy())
        value = report.value("pipe/ok")
        # No predictor vs the baseline: zero relative improvement.
        assert value["speedup"] == pytest.approx(0.0)
        assert value["predicted_loads"] == 0

    def test_simulation_honors_cooperative_timeout(self):
        from repro.harness.runner import clear_caches
        from repro.workloads.generator import generate_trace

        # Pre-generate the trace so only the (interruptible) timing
        # loop runs against the microscopic deadline.
        generate_trace("mcf", 6000, 3)
        clear_caches()
        cell = speedup_cell("pipe/slow", "mcf", 6000, {"kind": "none"}, seed=3)
        report = run_cells(
            [cell],
            ExecutionPolicy(
                timeout=1e-4, retry=RetryPolicy(max_retries=0)
            ),
        )
        (failure,) = report.failures
        assert "CellTimeout" in failure.error


class TestPoolExecution:
    """Worker-subprocess mode: hangs and crashes cannot kill the sweep."""

    def test_basic_pool_sweep_matches_inline(self):
        cells = echo_cells("pool")
        inline = run_cells(cells, ExecutionPolicy())
        pooled = run_cells(cells, ExecutionPolicy(workers=1))
        assert pooled.ok
        assert pooled.values() == inline.values()

    def test_hung_worker_reaped_and_retried(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "reap/a:hang")
        report = run_cells(
            echo_cells("reap", 2),
            ExecutionPolicy(workers=1, timeout=0.5, retry=FAST_RETRY),
        )
        assert report.ok
        assert report.outcomes["reap/a"].attempts == 2
        assert report.outcomes["reap/b"].attempts == 1

    def test_persistent_hang_fails_terminally_sweep_continues(
        self, monkeypatch
    ):
        monkeypatch.setenv(FAULT_PLAN_ENV, "stuck/a:hang:99")
        report = run_cells(
            echo_cells("stuck", 2),
            ExecutionPolicy(
                workers=1, timeout=0.4, retry=RetryPolicy(max_retries=0)
            ),
        )
        (failure,) = report.failures
        assert failure.id == "stuck/a"
        assert "timeout" in failure.error
        assert report.value("stuck/b") == {"doubled": 2, "tag": ""}

    def test_crashed_worker_retried(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "crash/b:crash")
        report = run_cells(
            echo_cells("crash"),
            ExecutionPolicy(workers=1, retry=FAST_RETRY),
        )
        assert report.ok
        assert report.outcomes["crash/b"].attempts == 2


DRIVER = """\
import json, sys
from repro.harness import resilient

cells = [
    resilient.Cell(id=f"camp/{name}", fn="_cells:echo_cell", spec={"x": i})
    for i, name in enumerate("abcde")
]
policy = resilient.ExecutionPolicy(
    journal_path=sys.argv[1],
    resume="--resume" in sys.argv[2:],
    retry=resilient.RetryPolicy(max_retries=0, backoff=0.001),
)
report = resilient.run_cells(cells, policy)
print(json.dumps({
    "values": report.values(),
    "statuses": {k: o.status for k, o in report.outcomes.items()},
}, sort_keys=True))
"""


def _run_driver(tmp_path, journal, *args, fault=None):
    extra = {FAULT_PLAN_ENV: fault} if fault else {}
    script = tmp_path / "driver.py"
    script.write_text(DRIVER)
    return subprocess.run(
        [sys.executable, str(script), str(journal), *args],
        capture_output=True, text=True, env=_subprocess_env(**extra),
        timeout=120,
    )


class TestJournalResume:
    def test_kill_mid_run_then_resume_is_byte_identical(self, tmp_path):
        # A crash fault in inline mode takes down the whole campaign
        # (os._exit), like kill -9 mid-run would.
        crashed = _run_driver(
            tmp_path, tmp_path / "j.jsonl", fault="camp/c:crash:99"
        )
        assert crashed.returncode == 70, crashed.stderr
        resumed = _run_driver(tmp_path, tmp_path / "j.jsonl", "--resume")
        assert resumed.returncode == 0, resumed.stderr
        clean = _run_driver(tmp_path, tmp_path / "clean.jsonl")
        assert clean.returncode == 0, clean.stderr

        resumed_out = json.loads(resumed.stdout)
        clean_out = json.loads(clean.stdout)
        # Byte-identical final values despite the kill + resume.
        assert json.dumps(resumed_out["values"], sort_keys=True) == \
            json.dumps(clean_out["values"], sort_keys=True)
        # Cells finished before the crash were replayed, not re-run.
        assert resumed_out["statuses"]["camp/a"] == "cached"
        assert resumed_out["statuses"]["camp/b"] == "cached"
        assert resumed_out["statuses"]["camp/c"] == "ok"

    def test_corrupt_journal_record_recomputed_on_resume(
        self, tmp_path, monkeypatch
    ):
        cells = echo_cells("cj")
        journal = tmp_path / "j.jsonl"
        monkeypatch.setenv(FAULT_PLAN_ENV, "cj/b:corrupt-journal")
        first = run_cells(
            cells, ExecutionPolicy(journal_path=str(journal))
        )
        assert first.ok  # only the journal record is torn, not the run
        monkeypatch.delenv(FAULT_PLAN_ENV)
        resumed = run_cells(
            cells, ExecutionPolicy(journal_path=str(journal), resume=True)
        )
        assert resumed.ok
        assert resumed.outcomes["cj/a"].status == "cached"
        assert resumed.outcomes["cj/b"].status == "ok"  # recomputed
        assert resumed.outcomes["cj/c"].status == "cached"
        assert json.dumps(resumed.values(), sort_keys=True) == \
            json.dumps(first.values(), sort_keys=True)

    def test_resume_with_different_campaign_rejected(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        run_cells(
            echo_cells("one"), ExecutionPolicy(journal_path=str(journal))
        )
        with pytest.raises(JournalError, match="campaign"):
            run_cells(
                echo_cells("two"),
                ExecutionPolicy(journal_path=str(journal), resume=True),
            )

    def test_resume_missing_journal_starts_fresh(self, tmp_path):
        journal = tmp_path / "new.jsonl"
        report = run_cells(
            echo_cells("fresh"),
            ExecutionPolicy(journal_path=str(journal), resume=True),
        )
        assert report.ok
        assert journal.exists()
        assert all(o.status == "ok" for o in report.outcomes.values())

    def test_resume_with_everything_cached_runs_nothing(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        cells = echo_cells("full")
        first = run_cells(cells, ExecutionPolicy(journal_path=str(journal)))
        again = run_cells(
            cells, ExecutionPolicy(journal_path=str(journal), resume=True)
        )
        assert all(o.status == "cached" for o in again.outcomes.values())
        assert again.values() == first.values()

    def test_progress_callback_sees_every_outcome(self, tmp_path):
        seen = []
        report = run_cells(
            echo_cells("prog"),
            ExecutionPolicy(
                journal_path=str(tmp_path / "j.jsonl"),
                progress=lambda o, done, total: seen.append(
                    (o.id, o.status, done, total)
                ),
            ),
        )
        assert report.ok
        assert [s[0] for s in seen] == ["prog/a", "prog/b", "prog/c"]
        assert [s[2] for s in seen] == [1, 2, 3]
        assert all(s[3] == 3 for s in seen)
