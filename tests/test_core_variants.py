"""Sensitivity tests: the core model must respond sanely to its knobs."""

import pytest

from repro.memory.hierarchy import HierarchyConfig
from repro.pipeline import CoreConfig, simulate
from repro.workloads import generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace("coremark", 8000)


class TestWidthSensitivity:
    def test_narrow_fetch_is_slower(self, trace):
        wide = simulate(trace, config=CoreConfig(fetch_width=4))
        narrow = simulate(trace, config=CoreConfig(fetch_width=1))
        assert narrow.cycles > wide.cycles

    def test_tiny_rob_is_slower(self, trace):
        big = simulate(trace)
        small = simulate(trace, config=CoreConfig(rob_entries=16))
        assert small.cycles > big.cycles

    def test_single_ls_lane_hurts_loads(self, trace):
        base = simulate(trace)
        starved = simulate(trace, config=CoreConfig(ls_lanes=1))
        assert starved.cycles >= base.cycles


class TestMemorySensitivity:
    def test_slow_memory_is_slower(self, trace):
        fast = simulate(trace)
        slow = simulate(trace, config=CoreConfig(
            hierarchy=HierarchyConfig(memory_latency=800)
        ))
        assert slow.cycles >= fast.cycles

    def test_no_prefetch_not_faster(self, trace):
        with_pf = simulate(trace)
        without = simulate(trace, config=CoreConfig(
            hierarchy=HierarchyConfig(prefetch_enabled=False)
        ))
        assert without.cycles >= with_pf.cycles


class TestPipelineDepth:
    def test_deeper_frontend_raises_branch_cost(self, trace):
        shallow = simulate(trace, config=CoreConfig(fetch_to_execute=8))
        deep = simulate(trace, config=CoreConfig(fetch_to_execute=24))
        assert deep.cycles > shallow.cycles

    def test_memdep_perfect_at_least_as_fast(self, trace):
        store_sets = simulate(trace)
        perfect = simulate(
            trace, config=CoreConfig(memory_dependence="perfect")
        )
        assert perfect.cycles <= store_sets.cycles


class TestQueueSizing:
    def test_tiny_vpe_drops_predictions(self):
        from repro.composite import CompositeConfig, CompositePredictor

        trace = generate_trace("linpack", 8000)
        def composite():
            return CompositePredictor(
                CompositeConfig(epoch_instructions=1000).homogeneous(256)
            )
        roomy = simulate(trace, composite())
        tight = simulate(trace, composite(), config=CoreConfig(vpe_entries=2))
        assert tight.dropped_queue_full > roomy.dropped_queue_full
        assert tight.predicted_loads < roomy.predicted_loads
