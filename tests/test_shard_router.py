"""Sharded tier: routing, failover, migration, fencing, restarts.

The cheap tests exercise the router's placement logic and the shard
manager's fencing without spawning any workers.  The slow end-to-end
scenario starts a real two-shard tier (each worker a ``repro-lvp
serve`` subprocess), drives durable sessions through the router, and
proves the tier's load-bearing promises in sequence: requests land on
the ring-designated worker, ``stats`` aggregates per-shard health, a
live migration moves a session's files between shards without losing
a request, a SIGKILLed worker is restarted and the client's retry
machinery rides through it, and a *new* router incarnation on the
same data dir fences leftovers and restores migration overrides from
the state file.  One scenario rather than five because worker startup
dominates the runtime.
"""

import asyncio
import json
import subprocess
import sys
import time

import pytest

from repro.serve.client import DurableClient
from repro.serve.durability import session_dir_name
from repro.serve.router import RouterConfig, ShardRouter
from repro.serve.shardmgr import (
    STATE_FILE,
    ShardManager,
    read_state,
    shard_name,
)

SPEC = {"kind": "component", "name": "lvp", "entries": 64}


def run(coro):
    return asyncio.run(coro)


def _events(i: int) -> list[dict]:
    value = (i * 13) % 251
    return [
        {"k": "s", "pc": 0x10, "addr": 0x9000, "size": 8, "value": value},
        {"k": "l", "pc": 0x20, "addr": 0x9000, "size": 8, "value": value,
         "pred": True},
        {"k": "t", "n": 2},
    ]


def _session_on(router: ShardRouter, shard: str, avoid=()) -> str:
    """A session id the ring places on ``shard``."""
    for i in range(10_000):
        sid = f"sess-{i:04d}"
        if sid not in avoid and router.placement(sid) == shard:
            return sid
    raise AssertionError(f"no session id hashes to {shard}")


class TestPlacement:
    def test_placement_follows_ring_overrides_and_moving(self):
        router = ShardRouter(RouterConfig(shards=4))
        owner = router.ring.lookup("abc")
        assert router.placement("abc") == owner
        other = next(
            name for name in router.manager.shards if name != owner
        )
        router.overrides["abc"] = other
        assert router.placement("abc") == other
        from repro.serve.router import _MOVING
        router.overrides["abc"] = _MOVING
        assert router.placement("abc") is None


class TestFencing:
    def test_unrelated_pid_is_never_shot(self, tmp_path):
        """Fencing verifies /proc cmdline before SIGKILL, so a recycled
        pid belonging to some other process survives a tier restart."""
        bystander = subprocess.Popen([sys.executable, "-c",
                                      "import time; time.sleep(30)"])
        try:
            (tmp_path / STATE_FILE).write_text(json.dumps({
                "workers": {"shard-00": {"pid": bystander.pid}},
            }))
            manager = ShardManager(1, data_dir=tmp_path)
            assert manager.fence_stale_workers() == []
            assert bystander.poll() is None
        finally:
            bystander.kill()
            bystander.wait()

    def test_dead_and_garbage_pids_are_ignored(self, tmp_path):
        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()
        (tmp_path / STATE_FILE).write_text(json.dumps({
            "workers": {
                "shard-00": {"pid": probe.pid},
                "shard-01": {"pid": "not-a-pid"},
                "shard-02": {},
            },
        }))
        manager = ShardManager(3, data_dir=tmp_path)
        assert manager.fence_stale_workers() == []

    def test_corrupt_state_file_is_not_fatal(self, tmp_path):
        (tmp_path / STATE_FILE).write_text("{nope")
        manager = ShardManager(1, data_dir=tmp_path)
        assert manager.fence_stale_workers() == []

    def test_state_file_round_trips_extra_keys(self, tmp_path):
        manager = ShardManager(2, data_dir=tmp_path)
        manager.extra["overrides"] = {"s": "shard-01"}
        manager.write_state(router_port=12345)
        state = read_state(tmp_path)
        assert state["router_port"] == 12345
        assert state["overrides"] == {"s": "shard-01"}
        assert sorted(state["workers"]) == [shard_name(0), shard_name(1)]


@pytest.mark.slow
class TestShardedTierEndToEnd:
    def test_route_stats_migrate_failover_restart(self, tmp_path):
        data = str(tmp_path / "tier")

        async def scenario():
            router = ShardRouter(RouterConfig(
                shards=2, data_dir=data, health_interval=0.1,
                ping_interval=0.0, fsync_interval=0.0,
                checkpoint_every=50,
            ))
            await router.start()
            clients = []
            try:
                sid_a = _session_on(router, shard_name(0))
                sid_b = _session_on(router, shard_name(1), avoid={sid_a})

                # --- Routing: each session lands on its ring owner.
                a = DurableClient("127.0.0.1", router.port, sid_a, SPEC,
                                  max_reconnects=200,
                                  reconnect_delay=0.1)
                b = DurableClient("127.0.0.1", router.port, sid_b, SPEC,
                                  max_reconnects=200,
                                  reconnect_delay=0.1)
                clients += [a, b]
                await a.connect()
                await b.connect()
                for i in range(3):
                    await a.apply(_events(i))
                    await b.apply(_events(i + 100))
                for shard, sid in ((shard_name(0), sid_a),
                                   (shard_name(1), sid_b)):
                    shard_dir = router.manager.shards[shard].data_dir
                    assert (shard_dir / "sessions"
                            / session_dir_name(sid)).is_dir()

                # --- Stats aggregation across the tier.
                stats = await router.stats()
                assert stats["sessions_active"] == 2
                assert all(entry["healthy"]
                           for entry in stats["shards"].values())
                assert stats["router_counters"]["forwarded"] > 0

                # --- Live migration: files move, requests keep landing.
                outcome = await router.migrate(sid_a, shard_name(1))
                assert outcome["migrated"] is True
                assert outcome["from"] == shard_name(0)
                assert router.placement(sid_a) == shard_name(1)
                target_dir = router.manager.shards[shard_name(1)].data_dir
                assert (target_dir / "sessions"
                        / session_dir_name(sid_a)).is_dir()
                # Override survives in the on-disk state file.
                assert read_state(data)["overrides"] == {
                    sid_a: shard_name(1)
                }
                after_migrate = await a.apply(_events(3))
                assert after_migrate["results"]
                assert a.next_seq == 6  # 1 open + 4 applies, none lost

                # --- Failover: SIGKILL the worker now holding both
                # sessions; the monitor restarts it and the durable
                # clients retry through "shard-unavailable".
                router.manager.kill(shard_name(1))
                recovered = await asyncio.gather(
                    a.apply(_events(4)), b.apply(_events(104))
                )
                assert all(r["results"] for r in recovered)
                assert a.reconnects + b.reconnects >= 1
                assert router.manager.shards[shard_name(1)].restarts >= 1
                assert router.counters.failovers >= 1
                final_a, final_b = a.next_seq - 1, b.next_seq - 1
            finally:
                for client in clients:
                    await client.close()
                await router.drain()

            # --- Cold restart of the whole tier on the same data dir:
            # overrides come back from router.json and both sessions
            # resume exactly where they stopped.
            router2 = ShardRouter(RouterConfig(
                shards=2, data_dir=data, health_interval=0.1,
                ping_interval=0.0, fsync_interval=0.0,
            ))
            await router2.start()
            try:
                assert router2.overrides == {sid_a: shard_name(1)}
                assert router2.recovery["overrides_restored"] == 1
                for sid, final in ((sid_a, final_a), (sid_b, final_b)):
                    client = DurableClient(
                        "127.0.0.1", router2.port, sid, SPEC,
                        max_reconnects=200, reconnect_delay=0.1,
                    )
                    opened = await client.connect()
                    assert opened["resumed"] is True
                    assert opened["applied_seq"] == final
                    await client.close()
            finally:
                await router2.drain()

        run(scenario())

    def test_orphan_workers_are_fenced_on_restart(self, tmp_path):
        """SIGKILL the router, leave its workers orphaned, and start a
        replacement tier immediately: the orphans must be gone (fenced
        or watchdog-exited) before the new workers touch the WALs."""
        data = str(tmp_path / "tier")
        env_script = (
            "import asyncio\n"
            "from repro.serve.router import RouterConfig, ShardRouter\n"
            "async def main():\n"
            "    router = ShardRouter(RouterConfig(shards=2,"
            " data_dir=%r, fsync_interval=0.0))\n"
            "    await router.start()\n"
            "    print('ready', flush=True)\n"
            "    await asyncio.sleep(60)\n"
            "asyncio.run(main())\n"
        ) % data
        import os
        from pathlib import Path
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p
        )
        first = subprocess.Popen(
            [sys.executable, "-c", env_script],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            env=env, text=True,
        )
        try:
            deadline = time.monotonic() + 90
            while time.monotonic() < deadline:
                line = first.stdout.readline()
                if line.startswith("ready"):
                    break
                assert line, "first tier died during startup"
            state = read_state(data)
            orphan_pids = [w["pid"] for w in state["workers"].values()]
            first.kill()
            first.wait()

            async def replacement():
                router = ShardRouter(RouterConfig(
                    shards=2, data_dir=data, fsync_interval=0.0,
                    ping_interval=0.0,
                ))
                await router.start()
                try:
                    assert (await router.stats())["sessions_active"] == 0
                finally:
                    await router.drain()

            run(replacement())
            # Every orphan is dead: fenced by the new tier or exited
            # via its --parent-pid watchdog, either way no split brain.
            for pid in orphan_pids:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    continue
                # Still-running pid must not be one of the old workers
                # (pid reuse); its cmdline must no longer name our dir.
                cmdline = Path(f"/proc/{pid}/cmdline").read_bytes()
                assert data.encode() not in cmdline
        finally:
            if first.poll() is None:
                first.kill()
                first.wait()
