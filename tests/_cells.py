"""Tiny picklable cell functions for resilient-harness tests.

Lives in its own (non-collected) module so both in-process sweeps and
worker subprocesses can resolve them by dotted path ("_cells:echo_cell"
with the tests directory on ``sys.path``/``PYTHONPATH``).
"""


def echo_cell(spec):
    """Return a deterministic transform of the spec (instant)."""
    return {"doubled": spec["x"] * 2, "tag": spec.get("tag", "")}


def boom_cell(spec):
    """Raise a deterministic (non-transient) error."""
    raise ValueError(f"deterministic boom for {spec!r}")
