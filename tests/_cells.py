"""Tiny picklable cell functions for resilient-harness tests.

Lives in its own (non-collected) module so both in-process sweeps and
worker subprocesses can resolve them by dotted path ("_cells:echo_cell"
with the tests directory on ``sys.path``/``PYTHONPATH``).
"""


def echo_cell(spec):
    """Return a deterministic transform of the spec (instant)."""
    return {"doubled": spec["x"] * 2, "tag": spec.get("tag", "")}


def boom_cell(spec):
    """Raise a deterministic (non-transient) error."""
    raise ValueError(f"deterministic boom for {spec!r}")


def counting_cell(spec):
    """Echo the spec after appending one line to an on-disk counter.

    The results-database tests use the counter file to *prove* a cell
    body never re-ran: every execution, in any process, appends a line
    to ``spec["counter_path"]``, so the line count is the true
    computation count regardless of what the sweep reports.
    """
    with open(spec["counter_path"], "a", encoding="utf-8") as fh:
        fh.write(f"{spec['x']}\n")
    return {"squared": spec["x"] ** 2}


def trace_store_probe_cell(spec):
    """Acquire a trace and report this process's trace-store traffic.

    Used by the cross-process store-reuse tests: a pool worker running
    this cell should *hit* the on-disk store (populated by the
    supervisor's pre-warm) rather than regenerate.  Resets the
    process-local caches first so an inline run measures the same thing
    a fresh worker process would.
    """
    import os

    from repro.workloads import store as trace_store
    from repro.workloads.generator import clear_trace_caches, generate_trace

    clear_trace_caches()
    trace = generate_trace(
        spec["workload"], spec["length"], spec.get("seed", 0)
    )
    store = trace_store.active_store()
    return {
        "pid": os.getpid(),
        "instructions": len(trace),
        "columnar": trace.columns is not None,
        "store": store.stats.as_dict() if store is not None else None,
    }
