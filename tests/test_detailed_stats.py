"""Tests for the detailed substrate statistics in SimResult.extra."""

import pytest

from repro.pipeline import CoreConfig, simulate
from repro.workloads import generate_trace


@pytest.fixture(scope="module")
def result():
    return simulate(generate_trace("gcc2k", 8000))


class TestExtraStats:
    def test_branch_section(self, result):
        branch = result.extra["branch"]
        assert branch["conditional_predictions"] > 0
        assert 0.5 <= branch["accuracy"] <= 1.0
        assert 0.0 <= branch["btb_hit_rate"] <= 1.0

    def test_cache_sections(self, result):
        caches = result.extra["caches"]
        assert set(caches) == {"l1i", "l1d", "l2", "l3"}
        for level, stats in caches.items():
            assert 0.0 <= stats["hit_rate"] <= 1.0, level
        assert caches["l1d"]["accesses"] >= result.loads * 0.5

    def test_inclusive_access_ordering(self, result):
        caches = result.extra["caches"]
        # L2 only sees L1 misses and fills.
        assert caches["l2"]["accesses"] <= caches["l1d"]["accesses"] + \
            caches["l1i"]["accesses"]

    def test_tlb_and_prefetch(self, result):
        assert 0.0 <= result.extra["tlb_hit_rate"] <= 1.0
        assert result.extra["prefetches_issued"] >= 0

    def test_memdep_section_present_by_default(self, result):
        memdep = result.extra["memdep"]
        assert memdep is not None
        assert memdep["violations"] == result.memory_order_violations

    def test_memdep_none_with_perfect_oracle(self):
        result = simulate(
            generate_trace("coremark", 3000),
            config=CoreConfig(memory_dependence="perfect"),
        )
        assert result.extra["memdep"] is None
