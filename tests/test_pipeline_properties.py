"""Property-based robustness tests for the core timing model.

Random (but memory-consistent) instruction streams must simulate
without crashing, obey basic cycle-count bounds, and be deterministic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.composite import CompositeConfig, CompositePredictor
from repro.isa.instruction import Instruction, OpClass
from repro.isa.trace import Trace
from repro.memory.image import MemoryImage
from repro.pipeline import CoreConfig, simulate

# Menu of abstract operations hypothesis composes into programs.
_OPS = st.sampled_from(["alu", "load", "store", "branch", "mul", "chain"])


def _build_trace(ops) -> Trace:
    """Materialize an op list into a memory-consistent trace."""
    image = MemoryImage()
    memory = MemoryImage()
    instructions = []
    addr_pool = [0x8000 + 8 * i for i in range(8)]
    store_count = 0
    for position, op in enumerate(ops):
        pc = 0x1000 + 4 * (position % 32)
        if op == "alu":
            instructions.append(Instruction(
                pc=pc, op=OpClass.INT_ALU, dest=position % 8,
                srcs=((position + 1) % 8,),
            ))
        elif op == "mul":
            instructions.append(Instruction(
                pc=pc, op=OpClass.INT_MUL, dest=position % 8,
                srcs=(position % 8,),
            ))
        elif op == "chain":
            instructions.append(Instruction(
                pc=pc, op=OpClass.INT_ALU, dest=3, srcs=(3,),
            ))
        elif op == "store":
            store_count += 1
            addr = addr_pool[position % len(addr_pool)]
            memory.write(addr, 8, store_count)
            instructions.append(Instruction(
                pc=pc, op=OpClass.STORE, srcs=(1,), addr=addr, size=8,
                value=store_count,
            ))
        elif op == "load":
            addr = addr_pool[position % len(addr_pool)]
            instructions.append(Instruction(
                pc=pc, op=OpClass.LOAD, dest=position % 8, addr=addr,
                size=8, value=memory.read(addr, 8),
            ))
        elif op == "branch":
            instructions.append(Instruction(
                pc=pc, op=OpClass.BRANCH_COND, srcs=(2,),
                taken=position % 3 == 0, target=0x1000,
            ))
    trace = Trace("prop", instructions)
    trace.initial_memory = image
    return trace


class TestRandomPrograms:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(_OPS, min_size=1, max_size=300))
    def test_simulates_without_crash_and_bounds_hold(self, ops):
        trace = _build_trace(ops)
        result = simulate(trace)
        n = len(trace)
        config = CoreConfig()
        assert result.cycles >= (n + config.commit_width - 1) // config.commit_width
        assert result.instructions == n
        assert result.loads == sum(1 for o in ops if o == "load")

    @settings(max_examples=15, deadline=None)
    @given(st.lists(_OPS, min_size=20, max_size=300))
    def test_deterministic(self, ops):
        trace = _build_trace(ops)
        assert simulate(trace).cycles == simulate(trace).cycles

    @settings(max_examples=15, deadline=None)
    @given(st.lists(_OPS, min_size=20, max_size=300))
    def test_composite_never_corrupts_results(self, ops):
        """With a predictor attached, counters stay consistent and the
        run completes whatever the instruction mix."""
        trace = _build_trace(ops)
        composite = CompositePredictor(
            CompositeConfig(epoch_instructions=1000).homogeneous(64)
        )
        result = simulate(trace, composite)
        assert result.correct_predictions <= result.predicted_loads
        assert result.predicted_loads <= result.predictable_loads
        assert result.cycles >= 1

    @settings(max_examples=10, deadline=None)
    @given(st.lists(_OPS, min_size=30, max_size=200))
    def test_prediction_never_slows_beyond_flush_budget(self, ops):
        """Cycles with a predictor may exceed baseline only by roughly
        the flush costs it incurred."""
        trace = _build_trace(ops)
        baseline = simulate(trace)
        composite = CompositePredictor(
            CompositeConfig(epoch_instructions=1000).homogeneous(64)
        )
        result = simulate(trace, composite)
        flush_budget = 40 * (
            result.value_mispredictions + 1
        ) + baseline.cycles // 5
        assert result.cycles <= baseline.cycles + flush_budget
