"""Tests for the bench delta-table formatter (repro.harness.benchdiff)."""

import json

import pytest

from repro.harness.benchdiff import diff_payloads, format_markdown, main


def _payload(medians, quick=False):
    return {
        "schema": "repro-bench/1",
        "config": {"quick": quick},
        "benchmarks": {
            name: {"median_ns": ns} for name, ns in medians.items()
        },
    }


class TestDiff:
    def test_speedup_and_delta(self):
        rows = diff_payloads(
            _payload({"baseline_sim": 200}), _payload({"baseline_sim": 100})
        )
        (row,) = rows
        assert row["speedup"] == pytest.approx(2.0)
        assert row["delta_ns"] == -100

    def test_new_and_removed_lanes(self):
        rows = diff_payloads(
            _payload({"old": 100}), _payload({"new": 100})
        )
        by_name = {r["name"]: r for r in rows}
        assert by_name["new"]["baseline_ns"] is None
        assert by_name["old"]["fresh_ns"] is None

    def test_component_probe_skipped(self):
        fresh = _payload({"trace_gen": 10})
        fresh["benchmarks"]["component_probe"] = {"lvp": {"probes": 5}}
        assert [r["name"] for r in diff_payloads(fresh, fresh)] == [
            "trace_gen"
        ]


class TestFormat:
    def test_markdown_table_shape(self):
        rows = diff_payloads(
            _payload({"a": 2_000_000}), _payload({"a": 1_000_000})
        )
        text = format_markdown(rows)
        assert "| benchmark |" in text
        assert "| a | 2.0 | 1.0 | -50.0% | 2.00x |" in text

    def test_quick_note_appended(self):
        text = format_markdown([], note="_quick_")
        assert text.rstrip().endswith("_quick_")


class TestMain:
    def test_happy_path(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        base.write_text(json.dumps(_payload({"a": 200})))
        fresh.write_text(json.dumps(_payload({"a": 100}, quick=True)))
        assert main([str(base), str(fresh)]) == 0
        out = capsys.readouterr().out
        assert "2.00x" in out
        assert "Quick mode" in out

    def test_bad_usage_exits_2(self, capsys):
        assert main(["only-one.json"]) == 2
        assert "usage:" in capsys.readouterr().err

    def test_unreadable_input_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main([str(bad), str(bad)]) == 2
        assert capsys.readouterr().err.startswith("error:")
