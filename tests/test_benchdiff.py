"""Tests for the shared benchmark schema/writer and its diff formatter."""

import json

import pytest

from repro.harness.benchdiff import (
    SCHEMA,
    diff_payloads,
    format_markdown,
    main,
    make_payload,
    median_lane,
)


def _payload(medians, quick=False):
    return {
        "schema": "repro-bench/1",
        "config": {"quick": quick},
        "benchmarks": {
            name: {"median_ns": ns} for name, ns in medians.items()
        },
    }


class TestSharedWriter:
    def test_make_payload_schema_and_fingerprint(self):
        payload = make_payload(
            "serve", {"sessions": 4}, {"lane": {"median_ns": 10}}
        )
        assert payload["schema"] == SCHEMA
        assert payload["suite"] == "serve"
        assert payload["config"] == {"sessions": 4}
        assert payload["environment"]["python"]
        assert payload["environment"]["platform"]
        assert payload["generated_at"].endswith("Z")
        assert "reference" not in payload

    def test_make_payload_copies_config(self):
        config = {"length": 1}
        payload = make_payload("simcore", config, {})
        config["length"] = 2
        assert payload["config"]["length"] == 1

    def test_reference_attached_when_given(self):
        payload = make_payload("simcore", {}, {}, reference={"x": 1})
        assert payload["reference"] == {"x": 1}

    def test_median_lane_median_of_n(self):
        lane = median_lane([30, 10, 20])
        assert lane["median_ns"] == 20
        assert lane["runs_ns"] == [30, 10, 20]

    def test_median_lane_metadata_rides_along(self):
        lane = median_lane([5], mode="warm")
        assert lane["mode"] == "warm"

    def test_median_lane_rejects_empty(self):
        with pytest.raises(ValueError):
            median_lane([])

    def test_suites_share_one_diffable_shape(self):
        simcore = make_payload("simcore", {}, {"a": median_lane([100])})
        serve = make_payload("serve", {}, {"a": median_lane([50])})
        (row,) = diff_payloads(simcore, serve)
        assert row["speedup"] == pytest.approx(2.0)

    def test_main_title_follows_fresh_suite(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        base.write_text(json.dumps(
            make_payload("serve", {}, {"lane": {"median_ns": 100}})
        ))
        fresh.write_text(json.dumps(
            make_payload("serve", {}, {"lane": {"median_ns": 90}})
        ))
        assert main([str(base), str(fresh)]) == 0
        assert "Prediction-service benchmarks" in capsys.readouterr().out


class TestDiff:
    def test_speedup_and_delta(self):
        rows = diff_payloads(
            _payload({"baseline_sim": 200}), _payload({"baseline_sim": 100})
        )
        (row,) = rows
        assert row["speedup"] == pytest.approx(2.0)
        assert row["delta_ns"] == -100

    def test_new_and_removed_lanes(self):
        rows = diff_payloads(
            _payload({"old": 100}), _payload({"new": 100})
        )
        by_name = {r["name"]: r for r in rows}
        assert by_name["new"]["baseline_ns"] is None
        assert by_name["old"]["fresh_ns"] is None

    def test_component_probe_skipped(self):
        fresh = _payload({"trace_gen": 10})
        fresh["benchmarks"]["component_probe"] = {"lvp": {"probes": 5}}
        assert [r["name"] for r in diff_payloads(fresh, fresh)] == [
            "trace_gen"
        ]


class TestFormat:
    def test_markdown_table_shape(self):
        rows = diff_payloads(
            _payload({"a": 2_000_000}), _payload({"a": 1_000_000})
        )
        text = format_markdown(rows)
        assert "| benchmark |" in text
        assert "| a | 2.0 | 1.0 | -50.0% | 2.00x |" in text

    def test_quick_note_appended(self):
        text = format_markdown([], note="_quick_")
        assert text.rstrip().endswith("_quick_")


class TestMain:
    def test_happy_path(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        base.write_text(json.dumps(_payload({"a": 200})))
        fresh.write_text(json.dumps(_payload({"a": 100}, quick=True)))
        assert main([str(base), str(fresh)]) == 0
        out = capsys.readouterr().out
        assert "2.00x" in out
        assert "Quick mode" in out

    def test_bad_usage_exits_2(self, capsys):
        assert main(["only-one.json"]) == 2
        assert "usage:" in capsys.readouterr().err

    def test_unreadable_input_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main([str(bad), str(bad)]) == 2
        assert capsys.readouterr().err.startswith("error:")
