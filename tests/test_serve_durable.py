"""Durable serving over the wire: seq contract, spill, crash recovery.

In-process servers cover the exactly-once wire contract (duplicate and
gapped ``seq``), transparent spill/recovery of evicted durable
sessions, the stats RPC's durability block, and the client's
dead-connection handling; the slow end-to-end test SIGKILLs a real
``repro-lvp serve`` subprocess mid-load and proves zero
acknowledged-event loss (the ``crashtest`` harness).
"""

import asyncio

import pytest

from repro.serve.client import DurableClient, ServeClient, ServeError
from repro.serve.server import PredictionServer, ServerConfig
from repro.serve.session import PredictorSession, SessionManager, apply_events

SPEC = {"kind": "component", "name": "lvp", "entries": 64}


def run(coro):
    return asyncio.run(coro)


async def _start_server(tmp_path=None, **overrides) -> PredictionServer:
    if tmp_path is not None:
        overrides.setdefault("data_dir", str(tmp_path / "state"))
        overrides.setdefault("fsync_interval", 0.0)
    server = PredictionServer(ServerConfig(**overrides))
    await server.start()
    return server


def _events(i: int) -> list[dict]:
    value = (i * 13) % 251
    return [
        {"k": "s", "pc": 0x10, "addr": 0x9000, "size": 8, "value": value},
        {"k": "l", "pc": 0x20, "addr": 0x9000, "size": 8, "value": value,
         "pred": True},
        {"k": "t", "n": 2},
    ]


class TestSeqContractOverTheWire:
    def test_duplicate_seq_returns_the_cached_response(self, tmp_path):
        async def scenario():
            server = await _start_server(tmp_path)
            try:
                async with await ServeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    opened = await client.request(
                        "open", session="d1", spec=SPEC, durable=True
                    )
                    assert opened["durable"] is True
                    assert opened["applied_seq"] == 1
                    first = await client.request(
                        "apply", session="d1", seq=2, events=_events(0)
                    )
                    replay = await client.request(
                        "apply", session="d1", seq=2, events=_events(0)
                    )
                    assert replay == first
                    # Only one execution happened.
                    session = server.sessions.get("d1")
                    assert session.loads == 1
            finally:
                await server.drain()
        run(scenario())

    def test_gap_missing_and_bad_seq_are_structured_errors(self, tmp_path):
        async def scenario():
            server = await _start_server(tmp_path)
            try:
                async with await ServeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    await client.request(
                        "open", session="d1", spec=SPEC, durable=True
                    )
                    with pytest.raises(ServeError) as excinfo:
                        await client.request(
                            "apply", session="d1", seq=5, events=[]
                        )
                    assert excinfo.value.code == "seq-gap"
                    with pytest.raises(ServeError) as excinfo:
                        await client.request(
                            "apply", session="d1", events=[]
                        )
                    assert excinfo.value.code == "seq-required"
                    with pytest.raises(ServeError) as excinfo:
                        await client.request(
                            "apply", session="d1", seq=0, events=[]
                        )
                    assert excinfo.value.code == "bad-seq"
                    # None of those perturbed the session's seq state.
                    assert server.sessions.get(
                        "d1"
                    ).tracker.applied_seq == 1
            finally:
                await server.drain()
        run(scenario())

    def test_error_responses_are_replayed_verbatim(self, tmp_path):
        async def scenario():
            server = await _start_server(tmp_path)
            try:
                async with await ServeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    await client.request(
                        "open", session="d1", spec=SPEC, durable=True
                    )
                    bad = [{"k": "t", "n": 1}, {"k": "zzz"}]
                    with pytest.raises(ServeError) as excinfo:
                        await client.request(
                            "apply", session="d1", seq=2, events=bad
                        )
                    original = excinfo.value
                    assert original.code == "bad-event"
                    # The retry gets the same semantic error, consuming
                    # the seq exactly once.
                    with pytest.raises(ServeError) as excinfo:
                        await client.request(
                            "apply", session="d1", seq=2, events=bad
                        )
                    assert excinfo.value.code == original.code
                    assert excinfo.value.message == original.message
                    await client.request(
                        "apply", session="d1", seq=3, events=_events(1)
                    )
            finally:
                await server.drain()
        run(scenario())

    def test_in_memory_sessions_share_the_dedup_contract(self):
        async def scenario():
            server = await _start_server()  # no data_dir at all
            try:
                async with await ServeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    with pytest.raises(ServeError) as excinfo:
                        await client.request(
                            "open", session="m1", spec=SPEC, durable=True
                        )
                    assert excinfo.value.code == "durability-disabled"
                    await client.request("open", session="m1", spec=SPEC)
                    first = await client.request(
                        "apply", session="m1", seq=1, events=_events(0)
                    )
                    assert await client.request(
                        "apply", session="m1", seq=1, events=_events(0)
                    ) == first
                    assert server.sessions.get("m1").loads == 1
            finally:
                await server.drain()
        run(scenario())

    def test_resume_open_reports_applied_seq(self, tmp_path):
        async def scenario():
            server = await _start_server(tmp_path)
            try:
                async with await ServeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    await client.request(
                        "open", session="d1", spec=SPEC, durable=True
                    )
                    for seq in (2, 3, 4):
                        await client.request(
                            "apply", session="d1", seq=seq,
                            events=_events(seq),
                        )
                    again = await client.request(
                        "open", session="d1", spec=SPEC, durable=True
                    )
                    assert again["resumed"] is True
                    assert again["applied_seq"] == 4
                    with pytest.raises(ServeError) as excinfo:
                        await client.request(
                            "open", session="d1",
                            spec={"kind": "component", "name": "sap",
                                  "entries": 64},
                            durable=True,
                        )
                    assert excinfo.value.code == "spec-mismatch"
            finally:
                await server.drain()
        run(scenario())


class TestEvictionSpill:
    def test_evicted_durable_session_spills_and_recovers(self, tmp_path):
        async def scenario():
            server = await _start_server(tmp_path, max_sessions=2)
            try:
                async with await ServeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    await client.request(
                        "open", session="d1", spec=SPEC, durable=True
                    )
                    first = await client.request(
                        "apply", session="d1", seq=2, events=_events(0)
                    )
                    # Two more sessions push d1 out of the LRU budget.
                    for sid in ("d2", "d3"):
                        await client.request(
                            "open", session=sid, spec=SPEC, durable=True
                        )
                    stats = await client.request("stats")
                    assert stats["durability"]["spills"] >= 1
                    assert "d1" not in server.sessions
                    # A spilled durable session recovers transparently:
                    # the replay cache still answers the old seq and
                    # new seqs keep advancing the recovered state.
                    replay = await client.request(
                        "apply", session="d1", seq=2, events=_events(0)
                    )
                    assert replay == first
                    await client.request(
                        "apply", session="d1", seq=3, events=_events(1)
                    )
                    reference = PredictorSession(SPEC, session_id="d1")
                    apply_events(reference, _events(0))
                    apply_events(reference, _events(1))
                    assert server.sessions.get(
                        "d1"
                    ).snapshot() == reference.snapshot()
                    stats = await client.request("stats")
                    assert stats["durability"]["recovered_sessions"] >= 1
            finally:
                await server.drain()
        run(scenario())


class TestStatsFields:
    def test_durability_block_reports_activity(self, tmp_path):
        async def scenario():
            server = await _start_server(tmp_path, checkpoint_every=1)
            try:
                async with await ServeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    await client.request(
                        "open", session="d1", spec=SPEC, durable=True
                    )
                    await client.request(
                        "apply", session="d1", seq=2, events=_events(0)
                    )
                    stats = await client.request("stats")
                    durability = stats["durability"]
                    assert durability["durable_opens"] == 1
                    assert durability["wal_appends"] >= 2
                    assert durability["wal_bytes"] > 0
                    assert durability["checkpoint_count"] >= 1
                    assert durability["recovered_sessions"] == 0
                    assert stats["sessions"]["durable_active"] == 1
                    assert stats["config"]["data_dir"] is not None
            finally:
                await server.drain()
        run(scenario())

    def test_plain_servers_have_no_durability_block(self):
        async def scenario():
            server = await _start_server()
            try:
                async with await ServeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    stats = await client.request("stats")
                    assert "durability" not in stats
                    assert stats["config"]["data_dir"] is None
            finally:
                await server.drain()
        run(scenario())


class TestByteAccounting:
    def test_closing_sessions_returns_their_bytes(self):
        """Closing any session releases its tracked bytes (durable or
        not) -- the budget cannot leak under open/close churn."""
        manager = SessionManager(max_sessions=8)
        for sid in ("a", "b"):
            session = manager.open(sid, SPEC)
            apply_events(session, [
                {"k": "s", "pc": 1, "addr": 0x1000 + i * 8, "size": 8,
                 "value": i}
                for i in range(64)
            ])
            manager.touch_bytes(session)
        assert manager.total_bytes() > 0
        manager.close("a")
        manager.close("b")
        assert manager.total_bytes() == 0


class TestDeadConnections:
    def test_submit_after_connection_loss_raises_not_hangs(self):
        """Regression: when the server's final response and its EOF
        land in the same window with nothing in flight, the read loop
        exits with no pending future to fail -- a later submit must
        raise immediately instead of awaiting a response forever."""
        async def scenario():
            server = await _start_server()
            client = await ServeClient.connect("127.0.0.1", server.port)
            assert (await client.ping())["pong"]
            await server.drain()  # closes the connection server-side
            for _ in range(200):
                if client._conn_lost is not None:
                    break
                await asyncio.sleep(0.005)
            assert client._conn_lost is not None
            with pytest.raises(ConnectionError):
                await asyncio.wait_for(client.request("ping"), timeout=5.0)
            await client.close()
        run(scenario())

    def test_durable_client_reconnects_through_connection_loss(
        self, tmp_path
    ):
        async def scenario():
            server = await _start_server(tmp_path)
            client = DurableClient("127.0.0.1", server.port, "d1", SPEC)
            try:
                await client.connect()
                first = await client.apply(_events(0))
                # Sever the connection server-side; the next call must
                # reconnect, resume, and retry under the same seq.
                for conn in list(server._conns):
                    conn.writer.close()
                second = await client.apply(_events(1))
                assert client.reconnects >= 1
                assert client.resumed is True
                reference = PredictorSession(SPEC, session_id="d1")
                apply_events(reference, _events(0))
                apply_events(reference, _events(1))
                assert server.sessions.get(
                    "d1"
                ).snapshot() == reference.snapshot()
                assert first["results"][1] is not None
                assert second["results"][1] is not None
            finally:
                await client.close()
                await server.drain()
        run(scenario())


class TestTombstoneOverTheWire:
    def test_close_retry_and_reopen_refusal(self, tmp_path):
        async def scenario():
            server = await _start_server(tmp_path)
            try:
                async with await ServeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    await client.request(
                        "open", session="d1", spec=SPEC, durable=True
                    )
                    await client.request(
                        "apply", session="d1", seq=2, events=_events(0)
                    )
                    closed = await client.request(
                        "close", session="d1", seq=3
                    )
                    assert closed["closed"]["loads"] == 1
                    # Retrying the close hits the tombstone, even
                    # though the session itself is gone.
                    assert await client.request(
                        "close", session="d1", seq=3
                    ) == closed
                    with pytest.raises(ServeError) as excinfo:
                        await client.request(
                            "open", session="d1", spec=SPEC, durable=True
                        )
                    assert excinfo.value.code == "session-closed"
                    with pytest.raises(ServeError) as excinfo:
                        await client.request(
                            "apply", session="d1", seq=4, events=[]
                        )
                    assert excinfo.value.code == "session-closed"
            finally:
                await server.drain()
        run(scenario())


@pytest.mark.slow
class TestKillNineEndToEnd:
    def test_crashtest_campaign_is_equivalent(self, tmp_path):
        """`repro-lvp serve` + SIGKILL mid-request == zero acked loss."""
        from repro.serve.crashtest import run_crashtest

        report = run_crashtest(
            workload="gcc2k", length=1500, kills=2,
            events_per_request=64,
            data_dir=str(tmp_path / "state"),
            timeout=120.0,
        )
        assert report["kills_done"] == 2
        assert report["lost_acks"] == 0
        assert report["mismatched_chunks"] == []
        assert report["final_state_match"] is True
        assert report["equivalent"] is True
        assert report["durability"]["recovered_sessions"] >= 1
