"""Tests for predictor hashing helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.hashing import mix64, path_hash, pc_index, pc_tag


class TestMix64:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_in_range(self, value):
        assert 0 <= mix64(value) < 2**64

    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_scrambles(self):
        assert mix64(1) != 1


class TestPcIndex:
    @given(st.integers(min_value=0, max_value=2**48),
           st.integers(min_value=1, max_value=16))
    def test_range(self, pc, bits):
        assert 0 <= pc_index(pc, bits) < (1 << bits)

    def test_distributes_consecutive_pcs(self):
        indices = {pc_index(0x1000 + 4 * i, 8) for i in range(64)}
        assert len(indices) >= 48  # near-unique for small footprints

    def test_history_changes_index(self):
        assert pc_index(0x1000, 10, history=0b10110) != pc_index(0x1000, 10)

    def test_zero_bits_degenerate_table(self):
        assert pc_index(0x1234 & ~3, 0) == 0

    def test_rejects_negative_width(self):
        with pytest.raises(ValueError):
            pc_index(0x1000, -1)

    def test_round_pcs_do_not_collide(self):
        """Regression: PCs at multiples of 0x1000 collapsed to index 0
        when the index hash folded its own shifted terms away."""
        indices = {pc_index(k * 0x1000, 10) for k in range(1, 9)}
        assert len(indices) > 4


class TestPcTag:
    @given(st.integers(min_value=0, max_value=2**48),
           st.integers(min_value=4, max_value=16))
    def test_range(self, pc, bits):
        assert 0 <= pc_tag(pc, bits) < (1 << bits)

    def test_tag_differs_from_index_aliases(self):
        """PCs that alias in the index should mostly differ in tag."""
        bits = 6
        by_index: dict[int, list[int]] = {}
        for i in range(512):
            pc = 0x40_0000 + 4 * i
            by_index.setdefault(pc_index(pc, bits), []).append(pc_tag(pc, 14))
        collisions = sum(
            len(tags) - len(set(tags)) for tags in by_index.values()
        )
        assert collisions <= 2

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            pc_tag(0x1000, 0)


class TestPathHash:
    def test_shifts_in_two_bits(self):
        """Distinct PC sequences produce distinct histories."""
        seq_a = seq_b = 0
        for pc in (0x1004, 0x1008, 0x100C):
            seq_a = path_hash(seq_a, pc, 16)
        for pc in (0x100C, 0x1008, 0x1004):
            seq_b = path_hash(seq_b, pc, 16)
        assert seq_a != seq_b

    def test_width_respected(self):
        history = 0
        for i in range(100):
            history = path_hash(history, 0x1000 + 4 * i, 8)
            assert 0 <= history < (1 << 8)

    def test_same_block_offset_different_blocks_differ(self):
        """Instructions at offset 0 of different cache blocks must
        contribute different path bits (regression: Table V's CAP row
        was degenerate without this)."""
        contributions = {
            path_hash(0, base, 32) for base in (0x40_0000, 0x40_0040,
                                                0x40_0080, 0x40_00C0)
        }
        assert len(contributions) >= 2

    def test_ages_out_old_pcs(self):
        """A width-4 register holds two PCs: after two pushes of the
        same PC, older history is fully displaced (fixed point)."""
        history = path_hash(0, 0xABC0, 4)
        for _ in range(2):
            history = path_hash(history, 0x1000, 4)
        assert path_hash(history, 0x1000, 4) == history

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            path_hash(0, 0x1000, 0)
