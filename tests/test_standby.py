"""Warm-standby replication tests: torn tails, rotation, promotion.

The replication contracts the sharded tier's standbys depend on live
here: a shipped chunk torn at *every* byte boundary never corrupts the
replica (partial tails stay pending, complete lines replay), segment
rotation racing the stream cursor converges to byte-identical local
files, a standby killed mid-replay re-syncs to a bit-identical
snapshot, and in-process promotion catches up from the fenced
primary's disk and starts serving with no acked record lost.
"""

import shutil

import pytest

from repro.serve.durability import (
    _TOMBSTONE,
    decode_line,
    encode_record,
    session_dir_name,
)
from repro.serve.server import PredictionServer, ServerConfig
from repro.serve.session import (
    PredictorSession,
    SessionError,
    apply_events,
)
from repro.serve.shardmgr import poll_backoff
from repro.serve.standby import (
    ReplicaSet,
    ReplicationError,
    SessionReplica,
    StandbyServer,
    ship_wal,
)

SPEC = {"kind": "component", "name": "lvp", "entries": 64}


def make_events(n_loads: int = 30, base: int = 0x1000) -> list[dict]:
    events = []
    for i in range(n_loads):
        pc = base + (i % 7) * 4
        addr = 0x8000 + (i % 5) * 8
        value = (i * 11) % 97
        events.append({"k": "s", "pc": pc + 1, "addr": addr, "size": 8,
                       "value": value})
        events.append({"k": "l", "pc": pc, "addr": addr, "size": 8,
                       "value": value, "pred": True})
        if i % 3 == 0:
            events.append({"k": "b", "pc": pc + 2, "taken": bool(i & 1),
                           "cond": True})
    return events


def chunked(events, size):
    return [events[i:i + size] for i in range(0, len(events), size)]


def reference_final(session_id, chunks) -> dict:
    session = PredictorSession(SPEC, session_id=session_id)
    for chunk in chunks:
        apply_events(session, chunk)
    return session.snapshot()


def durable_server(tmp_path, name="primary", **overrides):
    config = ServerConfig(
        data_dir=str(tmp_path / name),
        fsync_interval=0.0,
        checkpoint_every=overrides.pop("checkpoint_every", 10_000),
        **overrides,
    )
    return PredictionServer(config)


def drive(server, session_id, chunks, start_seq=2):
    server.execute(
        "open", {"session": session_id, "spec": SPEC, "durable": True}
    )
    seq = start_seq
    for chunk in chunks:
        server.execute(
            "apply", {"session": session_id, "seq": seq, "events": chunk}
        )
        seq += 1
    return seq


def replica_set(tmp_path) -> ReplicaSet:
    return ReplicaSet(tmp_path / "standby-sessions", 256, 1 << 20)


def stream_all(primary_root, replicas, max_bytes=64 * 1024) -> int:
    """Poll ship_wal until the stream fully drains; returns bytes."""
    total = 0
    for _ in range(1000):
        payload = ship_wal(primary_root, replicas.cursors(), max_bytes)
        progressed = replicas.ingest(payload)
        total += progressed
        if not progressed and not payload["exhausted"]:
            return total
    raise AssertionError("stream never drained")


def wal_lines(session_id, chunks) -> bytes:
    """A hand-built WAL byte stream: one open + one apply per chunk."""
    records = [{
        "seq": 1, "op": "open",
        "body": {"session": session_id, "spec": SPEC},
    }]
    for i, chunk in enumerate(chunks):
        records.append(
            {"seq": i + 2, "op": "apply", "body": {"events": chunk}}
        )
    return b"".join(encode_record(r) for r in records)


class TestTornChunkBoundaries:
    def test_every_byte_boundary(self, tmp_path):
        chunks = chunked(make_events(4), 3)
        data = wal_lines("t1", chunks)
        want = reference_final("t1", chunks)
        n_records = len(chunks) + 1
        boundaries = [0] + [i + 1 for i, b in enumerate(data)
                            if b == ord("\n")]
        for cut in range(len(data) + 1):
            replica = SessionReplica(
                "t1", tmp_path / f"cut-{cut}", 256, 1 << 20
            )
            consumed = replica.ingest_chunk(1, 0, data[:cut])
            # Only whole lines are verified; the tail stays pending.
            assert consumed == max(b for b in boundaries if b <= cut), \
                f"cut at byte {cut}"
            assert replica.cursor() == {"segment": 1, "offset": cut}
            assert replica.ingest_chunk(1, cut, data[cut:]) == \
                len(data) - consumed
            assert replica.records == n_records, f"cut at byte {cut}"
            assert replica.session.snapshot() == want, \
                f"cut at byte {cut}"
            replica.close_files()

    def test_cursor_mismatch_raises(self, tmp_path):
        data = wal_lines("t2", chunked(make_events(2), 2))
        replica = SessionReplica("t2", tmp_path / "r", 256, 1 << 20)
        replica.ingest_chunk(1, 0, data[:10])
        with pytest.raises(ReplicationError):
            replica.ingest_chunk(1, 9, data[9:])
        with pytest.raises(ReplicationError):
            replica.ingest_chunk(1, 11, data[11:])

    def test_crc_failure_on_complete_line_raises(self, tmp_path):
        data = wal_lines("t3", chunked(make_events(2), 2))
        flipped = bytes([data[0] ^ 0x01]) + data[1:]
        replica = SessionReplica("t3", tmp_path / "r", 256, 1 << 20)
        with pytest.raises(ReplicationError):
            replica.ingest_chunk(1, 0, flipped)

    def test_seq_gap_raises(self, tmp_path):
        records = [
            {"seq": 1, "op": "open",
             "body": {"session": "t4", "spec": SPEC}},
            {"seq": 3, "op": "apply",
             "body": {"events": make_events(1)}},
        ]
        data = b"".join(encode_record(r) for r in records)
        replica = SessionReplica("t4", tmp_path / "r", 256, 1 << 20)
        with pytest.raises(ReplicationError):
            replica.ingest_chunk(1, 0, data)

    def test_stale_segment_chunk_is_ignored(self, tmp_path):
        data = wal_lines("t5", chunked(make_events(2), 2))
        replica = SessionReplica("t5", tmp_path / "r", 256, 1 << 20)
        replica.ingest_chunk(1, 0, data)
        extra = encode_record(
            {"seq": len(chunked(make_events(2), 2)) + 2, "op": "apply",
             "body": {"events": []}}
        )
        replica.ingest_chunk(2, 0, extra)
        assert replica.segment == 2
        # A late-arriving duplicate for the sealed segment is a no-op.
        assert replica.ingest_chunk(1, 0, data) == 0
        replica.close_files()

    def test_rotation_with_pending_tail_raises(self, tmp_path):
        data = wal_lines("t6", chunked(make_events(2), 2))
        replica = SessionReplica("t6", tmp_path / "r", 256, 1 << 20)
        replica.ingest_chunk(1, 0, data[:-3])  # torn final line
        with pytest.raises(ReplicationError):
            replica.ingest_chunk(2, 0, data[-3:])


class TestRotationRacingCursor:
    def test_stream_converges_across_rotation(self, tmp_path):
        server = durable_server(tmp_path, wal_segment_bytes=4096)
        replicas = replica_set(tmp_path)
        root = server.durability.sessions_root
        chunks = chunked(make_events(120), 8)
        server.execute(
            "open", {"session": "rot", "spec": SPEC, "durable": True}
        )
        # Interleave writes with tiny ship polls so the cursor chases
        # an actively rotating WAL instead of reading it at rest.
        seq = 2
        for chunk in chunks:
            server.execute(
                "apply", {"session": "rot", "seq": seq, "events": chunk}
            )
            seq += 1
            replicas.ingest(ship_wal(root, replicas.cursors(), 4096))
        stream_all(root, replicas, 4096)
        replica = replicas.replicas["rot"]
        assert replica.segment > 1, "WAL never rotated; test is vacuous"
        assert replica.resyncs == 0
        assert replica.session.snapshot() == reference_final(
            "rot", chunks
        )
        # The local copy is byte-identical, segment by segment.
        replica.close_files()
        primary_dir = root / session_dir_name("rot")
        for src in sorted(primary_dir.glob("wal-*.log")):
            assert (replica.dir / src.name).read_bytes() == \
                src.read_bytes()


class TestResync:
    def test_standby_killed_mid_replay_then_resynced(self, tmp_path):
        server = durable_server(tmp_path)
        chunks = chunked(make_events(60), 6)
        drive(server, "kr", chunks)
        root = server.durability.sessions_root
        replicas = replica_set(tmp_path)
        # Partial replay, then the standby "dies": state and local
        # files vanish.
        replicas.ingest(ship_wal(root, replicas.cursors(), 4096))
        assert 0 < replicas.replicas["kr"].records
        for replica in replicas.replicas.values():
            replica.close_files()
        shutil.rmtree(replicas.sessions_root)
        fresh = replica_set(tmp_path)
        stream_all(root, fresh)
        assert fresh.replicas["kr"].session.snapshot() == \
            reference_final("kr", chunks)

    def test_explicit_resync_restarts_from_origin(self, tmp_path):
        server = durable_server(tmp_path)
        chunks = chunked(make_events(40), 5)
        drive(server, "rs", chunks)
        root = server.durability.sessions_root
        replicas = replica_set(tmp_path)
        replicas.ingest(ship_wal(root, replicas.cursors(), 4096))
        replica = replicas.replicas["rs"]
        replica.resync()
        assert replica.cursor() == {"segment": 1, "offset": 0}
        assert replica.resyncs == 1
        stream_all(root, replicas)
        assert replica.session.snapshot() == reference_final(
            "rs", chunks
        )

    def test_stale_cursor_gets_reset_and_recovers(self, tmp_path):
        server = durable_server(tmp_path)
        chunks = chunked(make_events(30), 5)
        drive(server, "sc", chunks)
        root = server.durability.sessions_root
        size = (root / session_dir_name("sc") /
                "wal-00000001.log").stat().st_size
        payload = ship_wal(root, {"sc": {"segment": 1,
                                         "offset": size + 64}})
        (entry,) = payload["sessions"]
        assert entry["reset"] is True and "chunks" not in entry
        replicas = replica_set(tmp_path)
        stream_all(root, replicas)
        replicas.ingest(payload)  # the reset forces a resync
        assert replicas.replicas["sc"].resyncs == 1
        stream_all(root, replicas)
        assert replicas.replicas["sc"].session.snapshot() == \
            reference_final("sc", chunks)


class TestPromotion:
    def standby(self, tmp_path) -> StandbyServer:
        config = ServerConfig(
            data_dir=str(tmp_path / "standby"),
            fsync_interval=0.0,
        )
        # Constructed but never start()ed: replication is driven by
        # hand so the test controls exactly how far the stream got.
        return StandbyServer(config, primary_port=1)

    def test_gates_sessions_until_promoted(self, tmp_path):
        standby = self.standby(tmp_path)
        with pytest.raises(SessionError) as err:
            standby.execute("apply", {"session": "x", "seq": 2,
                                      "events": []})
        assert err.value.code == "shard-unavailable"
        assert standby.execute("ping", {})["pong"] is True
        assert standby.standby_status()["promoted"] is False

    def test_promotion_catches_up_and_serves(self, tmp_path):
        server = durable_server(tmp_path)
        chunks = chunked(make_events(80), 8)
        next_seq = drive(server, "pm", chunks)
        root = server.durability.sessions_root
        standby = self.standby(tmp_path)
        # The stream only saw a prefix when the primary "died".
        standby.replicas.ingest(
            ship_wal(root, standby.replicas.cursors(), 4096)
        )
        streamed = standby.replicas.replicas["pm"].records
        assert 0 < streamed < next_seq - 1
        promo = standby.execute(
            "promote", {"source": str(tmp_path / "primary")}
        )
        assert promo["promoted"] is True
        assert promo["sessions"] == 1
        assert promo["catchup_records"] > 0
        assert promo["replayed_records"] == next_seq - 1
        # Promotion is idempotent: the report is stable.
        assert standby.execute("promote", {}) == promo
        # It now serves, continuing the seq stream with a live WAL.
        more = chunked(make_events(16, base=0x9000), 8)
        for chunk in more:
            standby.execute(
                "apply", {"session": "pm", "seq": next_seq,
                          "events": chunk}
            )
            next_seq += 1
        assert standby.sessions.get("pm").snapshot() == \
            reference_final("pm", chunks + more)

    def test_torn_tail_on_primary_is_dropped(self, tmp_path):
        server = durable_server(tmp_path)
        chunks = chunked(make_events(20), 5)
        next_seq = drive(server, "tt", chunks)
        wal = (server.durability.sessions_root /
               session_dir_name("tt") / "wal-00000001.log")
        intact = wal.read_bytes()
        torn = encode_record(
            {"seq": next_seq, "op": "apply", "body": {"events": []}}
        )[:-4]
        wal.write_bytes(intact + torn)
        standby = self.standby(tmp_path)
        promo = standby.promote({"source": str(tmp_path / "primary")})
        # The torn line was never acknowledged, so it must not count.
        assert promo["replayed_records"] == next_seq - 1
        assert standby.sessions.get("tt").snapshot() == \
            reference_final("tt", chunks)

    def test_prune_absent_drops_migrated_sessions(self, tmp_path):
        server = durable_server(tmp_path)
        drive(server, "keep", chunked(make_events(10), 5))
        drive(server, "gone", chunked(make_events(10), 5))
        root = server.durability.sessions_root
        standby = self.standby(tmp_path)
        stream_all(root, standby.replicas)
        assert len(standby.replicas.replicas) == 2
        # "gone" migrates off the primary before it dies.
        shutil.rmtree(root / session_dir_name("gone"))
        promo = standby.promote({"source": str(tmp_path / "primary")})
        assert promo["pruned_replicas"] == 1
        assert promo["sessions"] == 1
        assert standby.sessions.get("keep") is not None
        standby_gone = (standby.durability.sessions_root /
                        session_dir_name("gone"))
        assert not standby_gone.exists()

    def test_closed_session_finishes_tombstone(self, tmp_path):
        server = durable_server(tmp_path)
        chunks = chunked(make_events(10), 5)
        next_seq = drive(server, "cl", chunks)
        server.execute("close", {"session": "cl", "seq": next_seq})
        root = server.durability.sessions_root
        standby = self.standby(tmp_path)
        stream_all(root, standby.replicas)
        promo = standby.promote({"source": str(tmp_path / "primary")})
        assert promo["closed_sessions"] == 1
        assert promo["sessions"] == 0
        tomb = (standby.durability.sessions_root /
                session_dir_name("cl") / _TOMBSTONE)
        assert tomb.exists()


class TestShipWal:
    def test_budget_caps_one_poll(self, tmp_path):
        server = durable_server(tmp_path)
        drive(server, "bd", chunked(make_events(200), 10))
        root = server.durability.sessions_root
        payload = ship_wal(root, {}, 4096)
        assert payload["exhausted"] is True
        (entry,) = payload["sessions"]
        shipped = sum(len(c["data"]) for c in entry["chunks"])
        assert shipped <= 4096
        assert entry["cursor"]["offset"] == shipped

    def test_unknown_root_ships_nothing(self, tmp_path):
        payload = ship_wal(tmp_path / "nope", {}, 4096)
        assert payload == {"sessions": [], "exhausted": False}


class TestPollBackoff:
    def test_deterministic(self):
        a = poll_backoff(0.25, 2.0, 3, key="shard-00")
        b = poll_backoff(0.25, 2.0, 3, key="shard-00")
        assert a == b

    def test_jitter_bounds_and_cap(self):
        for streak in range(12):
            value = poll_backoff(0.25, 2.0, streak, key="s")
            interval = min(2.0, 0.25 * 2 ** streak)
            assert interval <= value <= interval * 1.25
        assert poll_backoff(0.25, 2.0, 50, key="s") <= 2.0 * 1.25

    def test_streak_grows_the_interval(self):
        assert poll_backoff(0.25, 2.0, 0) < poll_backoff(0.25, 2.0, 4)

    def test_keys_decorrelate(self):
        assert poll_backoff(0.25, 2.0, 2, key="a") != \
            poll_backoff(0.25, 2.0, 2, key="b")
