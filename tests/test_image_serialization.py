"""Tests for memory-image word-map serialization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.image import MemoryImage


class TestWordMap:
    def test_roundtrip(self):
        image = MemoryImage()
        image.write(0x100, 8, 0xDEADBEEF)
        image.write(0x1000, 4, 7)
        restored = MemoryImage.from_word_map(image.to_word_map())
        assert restored.read(0x100, 8) == 0xDEADBEEF
        assert restored.read(0x1000, 4) == 7

    def test_zero_words_omitted(self):
        image = MemoryImage()
        image.write(0x100, 8, 5)
        image.write(0x100, 8, 0)  # back to zero
        assert image.to_word_map() == {}

    def test_empty(self):
        assert MemoryImage.from_word_map({}).read(0, 8) == 0

    @settings(max_examples=40, deadline=None)
    @given(st.dictionaries(
        st.integers(min_value=0, max_value=1 << 20),
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        max_size=30,
    ))
    def test_roundtrip_property(self, words):
        image = MemoryImage()
        for word_addr, value in words.items():
            image.write(word_addr * 8, 8, value)
        restored = MemoryImage.from_word_map(image.to_word_map())
        for word_addr, value in words.items():
            assert restored.read(word_addr * 8, 8) == value
