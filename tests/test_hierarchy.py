"""Tests for the three-level memory hierarchy."""

from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy


class TestLoadPath:
    def test_cold_miss_charges_full_path(self):
        h = MemoryHierarchy()
        cfg = h.config
        latency = h.load_latency(0x1000, 0x20_0000)
        expected = (
            cfg.tlb_walk_latency + cfg.l1d.hit_latency + cfg.l2.hit_latency
            + cfg.l3.hit_latency + cfg.memory_latency
        )
        assert latency == expected

    def test_warm_hit_is_l1_latency(self):
        h = MemoryHierarchy()
        h.load_latency(0x1000, 0x20_0000)
        assert h.load_latency(0x1004, 0x20_0000) == h.config.l1d.hit_latency

    def test_l2_hit_after_l1_eviction(self):
        h = MemoryHierarchy(HierarchyConfig(prefetch_enabled=False))
        h.load_latency(0x1000, 0x0)
        # Evict block 0 from L1D (64KB 4-way, 256 sets): 4 conflicting blocks.
        for i in range(1, 6):
            h.load_latency(0x1000, i * 64 * 256)
        latency = h.load_latency(0x1000, 0x0)
        assert latency == h.config.l1d.hit_latency + h.config.l2.hit_latency


class TestProbe:
    def test_probe_does_not_allocate(self):
        h = MemoryHierarchy()
        hit, latency = h.probe_l1d(0x30_0000)
        assert hit is False
        assert latency == h.config.l1d.hit_latency
        hit, _ = h.probe_l1d(0x30_0000)
        assert hit is False  # still absent: probes never fill

    def test_probe_sees_demand_fills(self):
        h = MemoryHierarchy()
        h.load_latency(0x1000, 0x40_0000)
        hit, _ = h.probe_l1d(0x40_0000)
        assert hit is True


class TestPrefetch:
    def test_stride_stream_gets_prefetch_hits(self):
        h = MemoryHierarchy()
        misses_with = 0
        for i in range(64):
            latency = h.load_latency(0x1000, 0x100_0000 + i * 64)
            if latency > h.config.l1d.hit_latency:
                misses_with += 1
        h2 = MemoryHierarchy(HierarchyConfig(prefetch_enabled=False))
        misses_without = 0
        for i in range(64):
            latency = h2.load_latency(0x1000, 0x100_0000 + i * 64)
            if latency > h2.config.l1d.hit_latency:
                misses_without += 1
        assert misses_with < misses_without


class TestStoresAndFetch:
    def test_store_allocates(self):
        h = MemoryHierarchy()
        h.store_latency(0x50_0000)
        assert h.l1d.lookup(0x50_0000)

    def test_fetch_latency_warm(self):
        h = MemoryHierarchy()
        h.fetch_latency(0x40_0000)
        assert h.fetch_latency(0x40_0004) == h.config.l1i.hit_latency
