"""CLI robustness tests: error paths, exit codes, atomic output, resume.

Exit-code contract (see repro.cli): 0 success, 2 bad input, 3 partial
sweep failure, 130 interrupted.  A tiny one-workload scale is patched
in for the sweep tests so they run in seconds.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import cli
from repro.cli import main
from repro.harness.presets import ExperimentScale
from repro.harness.resilient import FAULT_PLAN_ENV

REPO = Path(__file__).resolve().parent.parent

TINY = ExperimentScale(
    name="smoke", workloads=("coremark",), trace_length=2000
)


@pytest.fixture
def tiny_smoke(monkeypatch):
    monkeypatch.setitem(cli._SCALES, "smoke", TINY)


class TestSimulateErrors:
    def test_missing_trace_file(self, tmp_path, capsys):
        assert main(["simulate", str(tmp_path / "nope.jsonl")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not found" in err

    def test_trace_path_is_directory(self, tmp_path, capsys):
        assert main(["simulate", str(tmp_path)]) == 2
        assert "directory" in capsys.readouterr().err

    def test_corrupt_trace_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not { json\nnot even close\n")
        assert main(["simulate", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "corrupt or not a trace" in err

    def test_empty_trace_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["simulate", str(empty)]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestRunFlags:
    def test_resume_requires_journal(self, capsys):
        assert main(["run", "fig6", "--resume"]) == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_json_output_is_atomic_and_complete(
        self, tiny_smoke, tmp_path, capsys
    ):
        out = tmp_path / "fig6.json"
        assert main([
            "run", "fig6", "--scale", "smoke", "--json", str(out),
        ]) == 0
        payload = json.loads(out.read_text())
        assert set(payload["speedup"]) == {
            "base", "m-am", "pc-am-64", "pc-am-infinite",
        }
        # No temp-file droppings from the atomic write.
        assert [p.name for p in tmp_path.iterdir()] == ["fig6.json"]
        capsys.readouterr()

    def test_partial_failure_exits_3_with_results(
        self, tiny_smoke, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv(FAULT_PLAN_ENV, "fig6/m-am/*:fail:99")
        rc = main([
            "run", "fig6", "--scale", "smoke", "--max-retries", "0",
        ])
        assert rc == 3
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["failures"]["failed_cells"] == 1
        assert payload["failures"]["cells"][0]["id"].startswith("fig6/m-am/")
        # Partial results for the surviving variants are still there.
        assert payload["speedup"]["base"] is not None
        assert "cells failed" in captured.err

    def test_journal_then_resume_same_payload(
        self, tiny_smoke, tmp_path, capsys
    ):
        journal = tmp_path / "fig6.jnl"
        assert main([
            "run", "fig6", "--scale", "smoke", "--journal", str(journal),
        ]) == 0
        first = json.loads(capsys.readouterr().out)
        assert journal.exists()
        assert main([
            "run", "fig6", "--scale", "smoke", "--journal", str(journal),
            "--resume",
        ]) == 0
        captured = capsys.readouterr()
        resumed = json.loads(captured.out)
        assert json.dumps(resumed, sort_keys=True) == \
            json.dumps(first, sort_keys=True)
        # Progress lines report every cell as replayed from the journal.
        assert "cached" in captured.err


class TestUnknownNamesListValid:
    """Unknown workload/predictor names exit 2 and list the valid ones."""

    def test_simulate_unknown_predictor(self, tmp_path, capsys):
        from repro.workloads.generator import generate_trace

        trace_file = tmp_path / "t.jsonl"
        generate_trace("coremark", 500).save(trace_file)
        rc = main([
            "simulate", str(trace_file), "--predictor", "oracle9000",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown predictor 'oracle9000'" in err
        for name in ("composite", "eves-8kb", "lvp", "svp"):
            assert name in err

    def test_bench_unknown_workload(self, capsys):
        assert main(["bench", "--workload", "spec2077"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload 'spec2077'" in err
        assert "gcc2k" in err and "listing1" in err

    def test_loadgen_unknown_workload(self, capsys):
        assert main(["loadgen", "--workload", "spec2077"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload 'spec2077'" in err
        assert "coremark" in err

    def test_loadgen_unknown_predictor(self, capsys):
        assert main(["loadgen", "--predictor", "oracle9000"]) == 2
        err = capsys.readouterr().err
        assert "unknown predictor 'oracle9000'" in err
        assert "composite" in err


class TestServeLoadgenFlagErrors:
    @pytest.mark.parametrize("argv,fragment", [
        (["serve", "--port", "70000"], "--port"),
        (["serve", "--max-queue", "0"], "--max-queue"),
        (["serve", "--max-batch", "0"], "--max-batch"),
        (["serve", "--request-timeout", "-1"], "--request-timeout"),
        (["serve", "--max-sessions", "0"], "--max-sessions"),
        (["serve", "--max-session-bytes", "0"], "--max-session-bytes"),
        (["loadgen", "--sessions", "0"], "--sessions"),
        (["loadgen", "--length", "50"], "--length"),
        (["loadgen", "--seed", "-1"], "--seed"),
        (["loadgen", "--events-per-request", "0"], "--events-per-request"),
        (["loadgen", "--pipeline-depth", "0"], "--pipeline-depth"),
        (["loadgen", "--connect", "nonsense"], "--connect"),
        (["loadgen", "--connect", "host:notaport"], "--connect"),
        (["loadgen", "--durable"], "--durable"),
    ])
    def test_bad_flag_values_exit_2(self, argv, fragment, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert fragment in err

    def test_loadgen_connect_to_dead_server_exits_2(self, capsys):
        rc = main([
            "loadgen", "--connect", "127.0.0.1:1",
            "--workload", "coremark", "--length", "500",
        ])
        assert rc == 2
        assert "cannot reach server" in capsys.readouterr().err


class TestPredictorSpecValidation:
    """Malformed predictor specs raise ValueError, never KeyError."""

    @pytest.mark.parametrize("spec,fragment", [
        ("composite", "must be a dict"),
        (["composite"], "must be a dict"),
        ({}, "missing 'kind'"),
        ({"config": None}, "missing 'kind'"),
        ({"kind": "composite"}, "missing 'config'"),
        ({"kind": "component"}, "missing 'name'"),
        ({"kind": "component", "name": "lvp"}, "missing 'entries'"),
        ({"kind": "eves"}, "missing 'variant'"),
        ({"kind": "eves", "variant": "64kb"}, "64kb"),
        ({"kind": "mystery"}, "mystery"),
    ])
    def test_malformed_specs_raise_value_error(self, spec, fragment):
        from repro.harness.runner import build_predictor

        with pytest.raises(ValueError, match=fragment):
            build_predictor(spec)

    def test_valid_specs_still_build(self):
        from repro.harness.runner import build_predictor

        assert build_predictor(None) is None
        assert build_predictor({"kind": "none"}) is None
        host = build_predictor(
            {"kind": "component", "name": "lvp", "entries": 64}
        )
        assert host is not None

    def test_bad_spec_surfaces_as_exit_2(self, monkeypatch, capsys):
        from repro.harness.runner import build_predictor

        monkeypatch.setitem(
            cli._EXPERIMENTS,
            "badspec",
            (lambda: build_predictor({"kind": "component"}), False),
        )
        assert main(["run", "badspec"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "missing 'name'" in err


class TestCacheCommand:
    @pytest.fixture(autouse=True)
    def _no_ambient_store(self, monkeypatch):
        from repro.harness import runner
        from repro.workloads.store import ENV_VAR

        monkeypatch.delenv(ENV_VAR, raising=False)
        runner.clear_caches()
        yield
        runner.clear_caches()

    def _populate(self, root):
        from repro.workloads.generator import GENERATOR_VERSION, _generate
        from repro.workloads.store import TraceStore

        trace = _generate("coremark", 800, 0)
        trace.pack()
        TraceStore(root).save(trace, 800, GENERATOR_VERSION)

    def test_stats_reports_entries(self, tmp_path, capsys):
        root = tmp_path / "store"
        self._populate(root)
        assert main(["cache", "--stats", "--dir", str(root)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1
        assert payload["total_bytes"] > 0
        assert "process_stats" not in payload

    def test_stats_uses_env_var(self, tmp_path, monkeypatch, capsys):
        from repro.workloads.store import ENV_VAR

        root = tmp_path / "store"
        self._populate(root)
        monkeypatch.setenv(ENV_VAR, str(root))
        assert main(["cache", "--stats"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 1

    def test_clear_removes_entries(self, tmp_path, capsys):
        root = tmp_path / "store"
        self._populate(root)
        assert main(["cache", "--clear", "--dir", str(root)]) == 0
        assert "removed 1 file(s)" in capsys.readouterr().out
        assert main(["cache", "--stats", "--dir", str(root)]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_no_store_configured_exits_2(self, capsys):
        assert main(["cache", "--stats"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no trace store configured" in err

    def test_store_path_is_a_file_exits_2(self, tmp_path, capsys):
        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("x")
        assert main(["cache", "--stats", "--dir", str(not_a_dir)]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_stats_and_clear_are_exclusive(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["cache", "--stats", "--clear", "--dir", str(tmp_path)])


class TestExploreFlagErrors:
    """``explore`` validation: exit 2 with the valid names listed."""

    @pytest.mark.parametrize("argv,fragment,listed", [
        (["explore", "--grid", "bogus"], "unknown grid 'bogus'", "table6"),
        (["explore", "--scale", "bogus"], "unknown scale 'bogus'", "quick"),
        (["explore", "--mode", "quantum"], "unknown mode 'quantum'",
         "timing"),
        (["explore", "--metric", "vibes"], "unknown metric 'vibes'",
         "speedup"),
        (["explore", "--mode", "functional", "--metric", "speedup"],
         "unknown metric 'speedup'", "coverage"),
        (["explore", "--eta", "1.0"], "--eta must be > 1.0", "1.0"),
        (["explore", "--rungs", "0"], "--rungs must be >= 1", "0"),
    ])
    def test_bad_flag_values_exit_2(self, argv, fragment, listed, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert fragment in err
        assert listed in err

    def test_unknown_grid_lists_every_grid(self, capsys):
        from repro.harness.presets import EXPLORE_GRIDS

        assert main(["explore", "--grid", "bogus"]) == 2
        err = capsys.readouterr().err
        for name in EXPLORE_GRIDS:
            assert name in err


class TestExploreEndToEnd:
    def test_smoke_grid_ranked_report(self, tiny_smoke, tmp_path, capsys):
        out = tmp_path / "ranked.json"
        assert main([
            "explore", "--grid", "smoke", "--scale", "smoke",
            "--mode", "functional", "--metric", "coverage",
            "-o", str(out),
        ]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["grid"] == "smoke"
        assert payload["groups"]["t256"]["winner"]
        assert len(payload["groups"]["t256"]["ranking"]) == 4
        assert "# explore smoke finished" in captured.err
        assert "full-grid cells" in captured.err
        # The -o report matches stdout and left no temp droppings.
        assert json.loads(out.read_text()) == payload
        assert [p.name for p in tmp_path.iterdir()] == ["ranked.json"]

    def test_cell_failures_exit_3_with_partial_ranking(
        self, tiny_smoke, monkeypatch, capsys
    ):
        monkeypatch.setenv(
            FAULT_PLAN_ENV, "explore/smoke/*/*/fuse/*:fail:99"
        )
        rc = main([
            "explore", "--grid", "smoke", "--scale", "smoke",
            "--mode", "functional", "--metric", "coverage",
            "--max-retries", "0",
        ])
        assert rc == 3
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["failures"]["failed_cells"] >= 1
        ranking = payload["groups"]["t256"]["ranking"]
        assert ranking[-1]["label"] == "64-64-64-64/fuse/pc-am"
        assert "sweep cell(s) failed" in captured.err


class TestCacheWhich:
    """``cache --which``: results database and combined views."""

    def _populate_results(self, root):
        from repro.harness.resultsdb import ResultsDb

        ResultsDb(root).store("ab" * 32, {"v": 1})

    def test_unknown_which_exits_2(self, tmp_path, capsys):
        assert main([
            "cache", "--stats", "--which", "bogus", "--dir", str(tmp_path),
        ]) == 2
        err = capsys.readouterr().err
        assert "unknown cache 'bogus'" in err
        assert "trace" in err and "results" in err and "all" in err

    def test_results_stats_and_clear(self, tmp_path, capsys):
        root = tmp_path / "db"
        self._populate_results(root)
        assert main([
            "cache", "--stats", "--which", "results",
            "--results-dir", str(root),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1
        assert payload["total_bytes"] > 0
        assert main([
            "cache", "--clear", "--which", "results",
            "--results-dir", str(root),
        ]) == 0
        assert "removed 1 file(s)" in capsys.readouterr().out

    def test_results_stats_uses_env_var(self, tmp_path, monkeypatch, capsys):
        from repro.harness.resultsdb import ENV_VAR

        root = tmp_path / "db"
        self._populate_results(root)
        monkeypatch.setenv(ENV_VAR, str(root))
        assert main(["cache", "--stats", "--which", "results"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 1

    def test_results_not_configured_exits_2(self, capsys):
        assert main(["cache", "--stats", "--which", "results"]) == 2
        err = capsys.readouterr().err
        assert "no results database configured" in err
        assert "REPRO_RESULTS_DB_DIR" in err

    def test_all_reports_both_with_nulls(self, tmp_path, monkeypatch, capsys):
        from repro.workloads.store import ENV_VAR as TRACE_ENV

        monkeypatch.delenv(TRACE_ENV, raising=False)
        root = tmp_path / "db"
        self._populate_results(root)
        assert main([
            "cache", "--stats", "--which", "all",
            "--results-dir", str(root),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace_store"] is None
        assert payload["results_db"]["entries"] == 1

    def test_all_with_nothing_configured_exits_2(self, monkeypatch, capsys):
        from repro.workloads.store import ENV_VAR as TRACE_ENV

        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert main(["cache", "--stats", "--which", "all"]) == 2
        assert "no caches configured" in capsys.readouterr().err

    def test_results_path_is_a_file_exits_2(self, tmp_path, capsys):
        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("x")
        assert main([
            "cache", "--stats", "--which", "results",
            "--results-dir", str(not_a_dir),
        ]) == 2
        assert "not a directory" in capsys.readouterr().err


class TestCrashtestFlags:
    """``crashtest`` flag validation: exit 2 before any server starts."""

    def test_bad_kills(self, capsys):
        assert main(["crashtest", "--kills", "0"]) == 2
        assert "--kills must be >= 1" in capsys.readouterr().err

    def test_bad_length(self, capsys):
        assert main(["crashtest", "--length", "50"]) == 2
        assert "--length must be >= 100" in capsys.readouterr().err

    def test_bad_seed(self, capsys):
        assert main(["crashtest", "--seed", "-1"]) == 2
        assert "--seed must be >= 0" in capsys.readouterr().err

    def test_bad_events_per_request(self, capsys):
        assert main(["crashtest", "--events-per-request", "0"]) == 2
        assert "--events-per-request" in capsys.readouterr().err

    def test_bad_fsync_interval(self, capsys):
        assert main(["crashtest", "--fsync-interval", "-0.5"]) == 2
        assert "--fsync-interval must be >= 0" in capsys.readouterr().err

    def test_bad_checkpoint_every(self, capsys):
        assert main(["crashtest", "--checkpoint-every", "0"]) == 2
        assert "--checkpoint-every must be >= 1" in capsys.readouterr().err

    def test_bad_timeout(self, capsys):
        assert main(["crashtest", "--timeout", "0"]) == 2
        assert "--timeout must be > 0" in capsys.readouterr().err

    def test_unknown_workload(self, capsys):
        assert main(["crashtest", "--workload", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_unknown_predictor(self, capsys):
        assert main(["crashtest", "--predictor", "oracle9000"]) == 2
        assert "unknown predictor" in capsys.readouterr().err

    def test_data_dir_is_a_file(self, tmp_path, capsys):
        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("x")
        assert main(["crashtest", "--data-dir", str(not_a_dir)]) == 2
        assert "not a directory" in capsys.readouterr().err


class TestServeDurabilityFlags:
    """``serve`` shares the durability flag validation."""

    def test_bad_fsync_interval(self, capsys):
        assert main(["serve", "--fsync-interval", "-1"]) == 2
        assert "--fsync-interval must be >= 0" in capsys.readouterr().err

    def test_bad_wal_segment_bytes(self, capsys):
        assert main(["serve", "--wal-segment-bytes", "16"]) == 2
        assert "--wal-segment-bytes must be >= 4096" in \
            capsys.readouterr().err

    def test_data_dir_is_a_file(self, tmp_path, capsys):
        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("x")
        assert main(["serve", "--data-dir", str(not_a_dir)]) == 2
        assert "not a directory" in capsys.readouterr().err


class TestShardingFlags:
    """Sharded-tier flag validation across serve/crashtest/loadgen."""

    def test_serve_bad_shards(self, capsys):
        assert main(["serve", "--shards", "0"]) == 2
        assert "--shards must be >= 1" in capsys.readouterr().err

    def test_serve_bad_ring_replicas(self, capsys):
        assert main(["serve", "--shards", "2", "--ring-replicas", "0"]) == 2
        assert "--ring-replicas must be >= 1" in capsys.readouterr().err

    def test_serve_bad_stats_interval(self, capsys):
        assert main(["serve", "--stats-interval", "-1"]) == 2
        assert "--stats-interval must be >= 0" in capsys.readouterr().err

    def test_serve_bad_seq_cache(self, capsys):
        assert main(["serve", "--seq-cache-size", "0"]) == 2
        assert "--seq-cache-size must be >= 1" in capsys.readouterr().err
        assert main(["serve", "--seq-cache-bytes", "0"]) == 2
        assert "--seq-cache-bytes must be >= 1" in capsys.readouterr().err

    def test_crashtest_kill_shard_needs_a_tier(self, capsys):
        assert main(["crashtest", "--kill-shard"]) == 2
        assert "pass --shards N with N > 1" in capsys.readouterr().err

    def test_crashtest_kill_router_needs_a_tier(self, capsys):
        assert main(["crashtest", "--kill-router"]) == 2
        assert "pass --shards N with N > 1" in capsys.readouterr().err

    def test_crashtest_bad_sessions(self, capsys):
        assert main(["crashtest", "--shards", "2", "--sessions", "0"]) == 2
        assert "--sessions must be >= 1" in capsys.readouterr().err

    def test_crashtest_bad_migrations(self, capsys):
        assert main(["crashtest", "--shards", "2",
                     "--migrations", "-1"]) == 2
        assert "--migrations must be >= 0" in capsys.readouterr().err

    def test_loadgen_bad_shards(self, capsys):
        assert main(["loadgen", "--shards", "-1"]) == 2
        assert "--shards must be >= 0" in capsys.readouterr().err


class TestStandbyFlags:
    """Warm-standby flag validation across serve/crashtest."""

    def test_serve_bad_standbys(self, capsys):
        assert main(["serve", "--standbys", "2"]) == 2
        assert "--standbys must be 0 or 1" in capsys.readouterr().err

    def test_serve_standbys_require_data_dir(self, capsys):
        assert main(["serve", "--shards", "2", "--standbys", "1"]) == 2
        assert "--standbys requires --data-dir" in capsys.readouterr().err

    def test_serve_bad_health_interval(self, capsys):
        assert main(["serve", "--health-interval", "0"]) == 2
        assert "--health-interval must be > 0" in capsys.readouterr().err

    def test_serve_backoff_below_interval(self, capsys):
        assert main(["serve", "--health-interval", "1.0",
                     "--health-backoff-max", "0.5"]) == 2
        assert "--health-backoff-max must be >= --health-interval" in \
            capsys.readouterr().err

    def test_standby_of_bad_port(self, tmp_path, capsys):
        assert main(["serve", "--standby-of", "0",
                     "--data-dir", str(tmp_path)]) == 2
        assert "port in [1, 65535]" in capsys.readouterr().err

    def test_standby_of_requires_data_dir(self, capsys):
        assert main(["serve", "--standby-of", "9000"]) == 2
        assert "--standby-of requires --data-dir" in \
            capsys.readouterr().err

    def test_standby_of_excludes_sharding(self, tmp_path, capsys):
        assert main(["serve", "--standby-of", "9000", "--shards", "3",
                     "--data-dir", str(tmp_path)]) == 2
        assert "incompatible" in capsys.readouterr().err

    def test_crashtest_bad_standbys(self, capsys):
        assert main(["crashtest", "--shards", "2",
                     "--standbys", "3"]) == 2
        assert "--standbys must be 0 or 1" in capsys.readouterr().err

    def test_crashtest_standbys_need_a_tier(self, capsys):
        assert main(["crashtest", "--standbys", "1"]) == 2
        assert "pass --shards N with N > 1" in capsys.readouterr().err


CLI_DRIVER = """\
import sys
from repro import cli
from repro.harness.presets import ExperimentScale

cli._SCALES["smoke"] = ExperimentScale(
    name="smoke", workloads=("coremark",), trace_length=2000
)
sys.exit(cli.main(sys.argv[1:]))
"""


def _run_cli(tmp_path, *args, fault=None, extra_env=None):
    env = dict(os.environ)
    env.pop(FAULT_PLAN_ENV, None)
    env["PYTHONPATH"] = str(REPO / "src")
    if fault:
        env[FAULT_PLAN_ENV] = fault
    if extra_env:
        env.update(extra_env)
    script = tmp_path / "cli_driver.py"
    script.write_text(CLI_DRIVER)
    return subprocess.run(
        [sys.executable, str(script), *args],
        capture_output=True, text=True, env=env, timeout=300,
    )


class TestKillAndResumeEndToEnd:
    def test_crash_mid_sweep_then_resume_matches_clean_run(self, tmp_path):
        journal = tmp_path / "fig6.jnl"
        out_resumed = tmp_path / "resumed.json"
        out_clean = tmp_path / "clean.json"

        # Campaign killed mid-run: the third variant's cell crashes the
        # whole process (inline mode), like a kill -9 would.
        crashed = _run_cli(
            tmp_path, "run", "fig6", "--scale", "smoke",
            "--journal", str(journal),
            fault="fig6/pc-am-64/*:crash:99",
        )
        assert crashed.returncode == 70, crashed.stderr
        assert journal.exists()

        resumed = _run_cli(
            tmp_path, "run", "fig6", "--scale", "smoke",
            "--journal", str(journal), "--resume",
            "--json", str(out_resumed),
        )
        assert resumed.returncode == 0, resumed.stderr

        clean = _run_cli(
            tmp_path, "run", "fig6", "--scale", "smoke",
            "--json", str(out_clean),
        )
        assert clean.returncode == 0, clean.stderr

        assert out_resumed.read_text() == out_clean.read_text()


class TestResultsDbEndToEnd:
    """Cross-invocation reuse through ``REPRO_RESULTS_DB_DIR``."""

    def test_repeat_explore_served_entirely_from_db(self, tmp_path):
        db_env = {"REPRO_RESULTS_DB_DIR": str(tmp_path / "resultsdb")}
        argv = (
            "explore", "--grid", "smoke", "--scale", "smoke",
            "--mode", "functional", "--metric", "coverage",
        )
        first = _run_cli(tmp_path, *argv, extra_env=db_env)
        assert first.returncode == 0, first.stderr
        assert "# results-db:" in first.stderr
        assert json.loads(first.stdout)["results_db"]["computed"] > 0

        again = _run_cli(tmp_path, *argv, extra_env=db_env)
        assert again.returncode == 0, again.stderr
        assert "(100%), 0 computed" in again.stderr
        payload = json.loads(again.stdout)
        assert payload["results_db"]["computed"] == 0
        assert payload["results_db"]["hit_rate"] == 1.0
        # Rankings are byte-identical whether computed or replayed.
        assert payload["groups"] == json.loads(first.stdout)["groups"]

    def test_run_and_resume_stdout_identical_with_db(self, tmp_path):
        db_env = {"REPRO_RESULTS_DB_DIR": str(tmp_path / "resultsdb")}
        journal = tmp_path / "fig6.jnl"
        argv = ("run", "fig6", "--scale", "smoke",
                "--journal", str(journal))
        first = _run_cli(tmp_path, *argv, extra_env=db_env)
        assert first.returncode == 0, first.stderr
        assert "# results-db:" in first.stderr

        resumed = _run_cli(tmp_path, *argv, "--resume", extra_env=db_env)
        assert resumed.returncode == 0, resumed.stderr
        # Journal replay wins: the DB is never consulted, the summary
        # line disappears, and stdout stays byte-identical.
        assert "# results-db:" not in resumed.stderr
        assert resumed.stdout == first.stdout
