"""Tests for the results-summary tool."""

import json

from repro.harness.summary import summarize


def _write(tmp_path, name, payload):
    (tmp_path / f"{name}.json").write_text(json.dumps(payload))


class TestSummarize:
    def test_empty_dir(self, tmp_path):
        assert summarize(tmp_path) == ""

    def test_fig2_line(self, tmp_path):
        _write(tmp_path, "fig2", {"average": {
            "pattern-1 (PC->value, LVP)": 0.30,
            "pattern-2 (PC->address, SAP)": 0.31,
            "pattern-3 (context, CVP/CAP)": 0.39,
        }})
        text = summarize(tmp_path)
        assert "pattern-1=30%" in text
        assert "F2" in text

    def test_fig11_line(self, tmp_path):
        _write(tmp_path, "fig11", {
            "contenders": {},
            "composite96_vs_eves32": {
                "speedup_increase": 0.26, "coverage_increase": 1.13,
            },
        })
        text = summarize(tmp_path)
        assert "+26%" in text and "+113%" in text

    def test_confidence_ablation_line(self, tmp_path):
        _write(tmp_path, "ablation_confidence", {"deltas": {
            "0": {"speedup": 0.059, "coverage": 0.41, "accuracy": 0.991},
            "-2": {"speedup": 0.035, "coverage": 0.54, "accuracy": 0.962},
        }})
        text = summarize(tmp_path)
        assert "99.1%" in text and "96.2%" in text

    def test_only_present_artifacts_summarized(self, tmp_path):
        _write(tmp_path, "fig12", {
            "composite_wins": 7, "eves_wins": 3,
            "average": {
                "composite_speedup": 0.057, "eves_speedup": 0.045,
                "composite_coverage": 0.40, "eves_coverage": 0.19,
            },
        })
        text = summarize(tmp_path)
        assert "F12" in text
        assert "F11" not in text
