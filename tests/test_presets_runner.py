"""Tests for experiment scales and the cached runner."""

from repro.harness.presets import FULL, QUICK, SMOKE, ExperimentScale
from repro.harness.runner import baseline_result, speedup, workload_trace
from repro.pipeline.vp import SingleComponentAdapter
from repro.predictors import make_component
from repro.workloads.profiles import ALL_WORKLOADS


class TestScales:
    def test_full_covers_all_workloads(self):
        assert FULL.workloads == ALL_WORKLOADS

    def test_smoke_subset_of_quick_philosophy(self):
        assert SMOKE.trace_length <= QUICK.trace_length <= FULL.trace_length

    def test_workloads_are_valid(self):
        for scale in (SMOKE, QUICK):
            assert set(scale.workloads) <= set(ALL_WORKLOADS)

    def test_epoch_scaling(self):
        scale = ExperimentScale("t", ("mcf",), 24_000)
        assert scale.epoch_instructions == 2000
        tiny = ExperimentScale("t", ("mcf",), 3_000)
        assert tiny.epoch_instructions == 1000  # floor


class TestRunnerCaching:
    def test_baseline_cached(self):
        a = baseline_result("coremark", 3000)
        b = baseline_result("coremark", 3000)
        assert a is b  # same object: lru_cache hit

    def test_trace_memoized(self):
        assert workload_trace("coremark", 3000) is workload_trace(
            "coremark", 3000
        )

    def test_speedup_consistency(self):
        adapter = SingleComponentAdapter(make_component("sap", 256))
        gain, result = speedup("coremark", 3000, adapter)
        baseline = baseline_result("coremark", 3000)
        assert gain == result.speedup_over(baseline)
