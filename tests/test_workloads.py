"""Tests for workload generation: registry, determinism, consistency,
and -- critically -- that each kernel produces the load behaviour it
advertises (the basis of every figure's shape)."""

import pytest

from repro.common.rng import DeterministicRng
from repro.isa.instruction import OpClass
from repro.memory.image import MemoryImage
from repro.workloads.builder import ProgramBuilder
from repro.workloads.generator import SPECIAL_WORKLOADS, generate_trace
from repro.workloads.kernels import (
    KERNEL_CLASSES,
    ChainedStrideKernel,
    ConstantPoolKernel,
    ContextAddressKernel,
    HotFlagKernel,
    MemsetScanKernel,
    PeriodicPatternKernel,
    PointerChaseKernel,
    StridedSumKernel,
)
from repro.workloads.profiles import (
    ALL_WORKLOADS,
    FAMILIES,
    WORKLOAD_FAMILY,
    profile_for,
)


class TestRegistry:
    def test_eighty_five_workloads(self):
        """The paper evaluates 85 workloads (Figure 12)."""
        assert len(ALL_WORKLOADS) == 85

    def test_listing1_is_a_named_special_workload(self):
        """Listing 1 runs through generate_trace like any workload, but
        lives outside ALL_WORKLOADS so the 85-workload figures are
        unchanged."""
        assert SPECIAL_WORKLOADS == ("listing1",)
        assert "listing1" not in ALL_WORKLOADS
        trace = generate_trace("listing1", 3000)
        assert trace.name == "listing1"
        assert len(trace.instructions) == 3000
        assert trace.metadata["family"] == "micro"
        assert trace.metadata["scan_load_pc"] is not None
        # Deterministic in (name, length, seed), like every workload.
        again = generate_trace("listing1", 3000)
        assert again is trace

    def test_every_family_is_defined(self):
        assert set(WORKLOAD_FAMILY.values()) <= set(FAMILIES)

    def test_family_weights_reference_real_kernels(self):
        for family, weights in FAMILIES.items():
            unknown = set(weights) - set(KERNEL_CLASSES)
            assert not unknown, f"{family}: {unknown}"

    def test_profile_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            profile_for("not-a-benchmark")

    def test_profiles_are_deterministic(self):
        assert profile_for("gcc2k") == profile_for("gcc2k")

    def test_siblings_differ(self):
        assert profile_for("gcc2k") != profile_for("gzip")


class TestGeneration:
    def test_deterministic(self):
        a = generate_trace("coremark", 5000)
        b = generate_trace("coremark", 5000)
        assert a.instructions == b.instructions

    def test_seed_changes_trace(self):
        a = generate_trace("coremark", 5000, seed=0)
        b = generate_trace("coremark", 5000, seed=1)
        assert a.instructions != b.instructions

    def test_exact_length(self):
        assert len(generate_trace("mcf", 7000)) == 7000

    def test_reasonable_mix(self):
        stats = generate_trace("gcc2k", 20_000).stats()
        assert 0.10 < stats.load_fraction < 0.40
        assert 0.05 < stats.branch_fraction < 0.40
        assert stats.unique_load_pcs > 10

    def test_memory_consistency(self):
        """Replaying stores over the initial image must reproduce every
        load's value -- the invariant all probe resolution relies on."""
        trace = generate_trace("v8", 15_000)
        image = trace.initial_memory.copy()
        for inst in trace.instructions:
            if inst.op is OpClass.STORE:
                image.write(inst.addr, inst.size, inst.value)
            elif inst.op is OpClass.LOAD:
                assert image.read(inst.addr, inst.size) == inst.value

    @pytest.mark.parametrize("name", ["coremark", "equake", "splay"])
    def test_initial_memory_attached(self, name):
        trace = generate_trace(name, 2000)
        assert isinstance(trace.initial_memory, MemoryImage)


def _collect(kernel, budget=4000):
    out = []
    while len(out) < budget:
        kernel.emit(out, 400)
    return out


def _loads(instructions):
    return [i for i in instructions if i.is_load]


class TestKernelBehaviours:
    def test_constant_pool_values_fixed_per_pc(self):
        builder = ProgramBuilder(DeterministicRng(1))
        loads = _loads(_collect(ConstantPoolKernel(builder, n_constants=4)))
        by_pc: dict[int, set] = {}
        for load in loads:
            by_pc.setdefault(load.pc, set()).add(load.value)
        assert by_pc and all(len(v) == 1 for v in by_pc.values())

    def test_strided_sum_addresses_strided_values_distinct(self):
        builder = ProgramBuilder(DeterministicRng(2))
        kernel = StridedSumKernel(builder, n_elems=64, stride_elems=2,
                                  elem_size=8)
        loads = _loads(_collect(kernel, budget=500))
        deltas = {b.addr - a.addr for a, b in zip(loads, loads[1:])
                  if b.addr > a.addr}
        assert deltas == {16}
        assert len({l.value for l in loads[:64]}) == len(loads[:64])

    def test_memset_scan_loads_zero(self):
        builder = ProgramBuilder(DeterministicRng(3))
        kernel = MemsetScanKernel(builder, inner_n=16)
        out = []
        kernel.emit(out, 0)
        scan_loads = [i for i in out if i.is_load and i.pc == kernel.scan_code]
        assert len(scan_loads) == 16
        assert all(l.value == 0 for l in scan_loads)

    def test_pointer_chase_values_are_next_addresses(self):
        builder = ProgramBuilder(DeterministicRng(4))
        kernel = PointerChaseKernel(builder, n_nodes=32)
        out = []
        kernel.emit(out, 32 * 5)
        next_loads = [i for i in out if i.is_load and i.pc == kernel.code]
        for a, b in zip(next_loads, next_loads[1:]):
            assert a.value == b.addr  # the chase invariant

    def test_periodic_pattern_values_cycle(self):
        builder = ProgramBuilder(DeterministicRng(5))
        kernel = PeriodicPatternKernel(builder, period=4, iters_per_burst=32)
        loads = _loads(_collect(kernel, budget=1000))
        values = [l.value for l in loads]
        assert values[: 4] == values[4: 8] == values[8: 12]
        assert len(set(values[:4])) == 4

    def test_context_address_per_site_addresses(self):
        builder = ProgramBuilder(DeterministicRng(6))
        kernel = ContextAddressKernel(builder, n_sites=2, drift_period=1000)
        out = []
        kernel.emit(out, 200)
        helper_loads = [
            i for i in out if i.is_load and i.pc == kernel.helper_code
        ]
        addresses = {l.addr for l in helper_loads}
        assert addresses == set(kernel.site_data)

    def test_chained_stride_addresses_strided_values_linked(self):
        builder = ProgramBuilder(DeterministicRng(7))
        plain = ChainedStrideKernel(builder, n_elems=64,
                                    encoded_fraction=0.0)
        out = []
        plain.emit(out, 64 * 5)
        loads = _loads(out)
        # Addresses walk the array in order...
        for a, b in zip(loads, loads[1:]):
            assert b.addr == plain.array + (
                ((a.addr - plain.array) // 8 + 1) % plain.n
            ) * 8
        # ...and plain copies store the literal next index.
        for load in loads[:-1]:
            assert load.value == ((load.addr - plain.array) // 8 + 1) % plain.n

    def test_chained_stride_encoded_values_not_arithmetic(self):
        """Encoded copies break stride-VALUE predictability (so only
        the address predictors can shortcut the chain)."""
        builder = ProgramBuilder(DeterministicRng(9))
        kernel = ChainedStrideKernel(builder, n_elems=64,
                                     encoded_fraction=1.0)
        out = []
        kernel.emit(out, 64 * 5)
        values = [l.value for l in _loads(out)][:32]
        deltas = {b - a for a, b in zip(values, values[1:])}
        assert len(deltas) > 5  # nothing like an arithmetic sequence

    def test_hot_flag_reload_sees_fresh_store(self):
        builder = ProgramBuilder(DeterministicRng(8))
        kernel = HotFlagKernel(builder, gap_alu=2)
        out = []
        kernel.emit(out, 100)
        stores = [i for i in out if i.is_store]
        loads = _loads(out)
        assert len(stores) == len(loads)
        for store, load in zip(stores, loads):
            assert store.addr == load.addr
            assert store.value == load.value  # architecturally fresh
