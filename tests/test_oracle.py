"""Tests for the oracle load classifier (Figure 2)."""

from repro.classify.oracle import LoadPattern, OracleClassifier, classify_trace
from repro.isa.instruction import Instruction, OpClass
from repro.isa.trace import Trace


class TestClassificationRules:
    def test_first_instance_is_pattern_3(self):
        oracle = OracleClassifier()
        assert oracle.observe(0x1000, 0x8000, 5) is LoadPattern.PATTERN_3

    def test_repeated_value_is_pattern_1(self):
        oracle = OracleClassifier()
        oracle.observe(0x1000, 0x8000, 5)
        assert oracle.observe(0x1000, 0x9000, 5) is LoadPattern.PATTERN_1

    def test_strided_address_is_pattern_2(self):
        oracle = OracleClassifier()
        oracle.observe(0x1000, 0x8000, 1)
        oracle.observe(0x1000, 0x8008, 2)  # establishes stride 8
        assert oracle.observe(0x1000, 0x8010, 3) is LoadPattern.PATTERN_2

    def test_pattern_1_has_priority_over_pattern_2(self):
        """Value match AND stride match -> Pattern-1 (ordered, exclusive)."""
        oracle = OracleClassifier()
        oracle.observe(0x1000, 0x8000, 5)
        oracle.observe(0x1000, 0x8008, 5)
        assert oracle.observe(0x1000, 0x8010, 5) is LoadPattern.PATTERN_1

    def test_zero_stride_is_pattern_2_when_values_differ(self):
        oracle = OracleClassifier()
        oracle.observe(0x1000, 0x8000, 1)
        oracle.observe(0x1000, 0x8000, 2)  # stride 0 established
        assert oracle.observe(0x1000, 0x8000, 3) is LoadPattern.PATTERN_2

    def test_random_everything_is_pattern_3(self):
        oracle = OracleClassifier()
        oracle.observe(0x1000, 0x8000, 1)
        oracle.observe(0x1000, 0x9731, 2)
        assert oracle.observe(0x1000, 0x8123, 9) is LoadPattern.PATTERN_3

    def test_per_pc_isolation(self):
        oracle = OracleClassifier()
        oracle.observe(0x1000, 0x8000, 5)
        assert oracle.observe(0x2000, 0x8000, 5) is LoadPattern.PATTERN_3


class TestTraceClassification:
    def test_skips_unpredictable_loads(self):
        loads = [
            Instruction(pc=0x1000, op=OpClass.LOAD, dest=1, addr=0x8000,
                        size=8, value=5),
            Instruction(pc=0x1000, op=OpClass.LOAD, dest=1, addr=0x8000,
                        size=8, value=5, no_predict=True),
        ]
        result = classify_trace(Trace("t", loads))
        assert result.total == 1

    def test_fractions_sum_to_one(self):
        from repro.workloads import generate_trace

        result = classify_trace(generate_trace("coremark", 8000))
        fractions = result.as_dict()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9

    def test_merge(self):
        from repro.classify.oracle import ClassificationResult

        a = ClassificationResult()
        a.counts[LoadPattern.PATTERN_1] = 3
        b = ClassificationResult()
        b.counts[LoadPattern.PATTERN_1] = 2
        b.counts[LoadPattern.PATTERN_3] = 5
        a.merge(b)
        assert a.counts[LoadPattern.PATTERN_1] == 5
        assert a.total == 10
