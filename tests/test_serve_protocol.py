"""Fuzz-style protocol robustness tests (the never-crash contract).

Feeds truncated, oversized, garbage, and structurally invalid frames
to a live server and asserts that every malformed input yields a
structured error frame, the connection survives wherever the stream
stays decodable, and the server keeps answering well-formed requests
afterwards.
"""

import asyncio
import json
import struct

import pytest

from repro.serve import protocol
from repro.serve.server import PredictionServer, ServerConfig


def run(coro):
    return asyncio.run(coro)


async def _start_server(**overrides) -> PredictionServer:
    server = PredictionServer(ServerConfig(**overrides))
    await server.start()
    return server


async def _open(server):
    return await asyncio.open_connection("127.0.0.1", server.port)


def _frame(frame_type: int, body: dict) -> bytes:
    return protocol.encode_frame(frame_type, body)


async def _read_frame(reader):
    return await asyncio.wait_for(protocol.read_frame(reader), timeout=5.0)


class TestRoundTrip:
    def test_encode_decode_roundtrip(self):
        body = {"id": 3, "op": "ping", "data": [1, 2, {"x": "y"}]}
        raw = protocol.encode_frame(protocol.REQUEST, body)
        length, frame_type = struct.unpack("<IB", raw[:5])
        assert frame_type == protocol.REQUEST
        assert length == len(raw) - 4
        assert protocol.decode_body(frame_type, raw[5:]) == body

    def test_unknown_frame_type_rejected(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.decode_body(42, b"{}")
        assert excinfo.value.code == "bad-frame"

    def test_bad_json_rejected(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.decode_body(protocol.REQUEST, b"\xff\xfe{{{")
        assert excinfo.value.code == "bad-json"

    @pytest.mark.parametrize("body,fragment", [
        ([], "object"),
        ({}, "'id'"),
        ({"id": -1}, "'id'"),
        ({"id": True}, "'id'"),
        ({"id": "seven"}, "'id'"),
    ])
    def test_bad_envelopes_rejected(self, body, fragment):
        with pytest.raises(protocol.ProtocolError, match=fragment):
            protocol.validate_request(body)


class TestMalformedFramesAgainstLiveServer:
    def test_garbage_bytes_then_valid_request_on_new_connection(self):
        async def scenario():
            server = await _start_server()
            try:
                reader, writer = await _open(server)
                writer.write(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
                await writer.drain()
                # Whatever happens to this connection, the server
                # survives and keeps serving fresh ones.
                writer.close()
                reader2, writer2 = await _open(server)
                writer2.write(_frame(
                    protocol.REQUEST, {"id": 1, "op": "ping"}
                ))
                await writer2.drain()
                frame_type, body = await _read_frame(reader2)
                assert frame_type == protocol.RESPONSE
                assert body["ok"] and body["result"]["pong"]
                writer2.close()
            finally:
                await server.drain()
        run(scenario())

    def test_bad_json_body_gets_error_frame_and_connection_survives(self):
        async def scenario():
            server = await _start_server()
            try:
                reader, writer = await _open(server)
                bad = b"this is not json"
                writer.write(
                    struct.pack("<IB", len(bad) + 1, protocol.REQUEST) + bad
                )
                writer.write(_frame(
                    protocol.REQUEST, {"id": 2, "op": "ping"}
                ))
                await writer.drain()
                frame_type, body = await _read_frame(reader)
                assert frame_type == protocol.ERROR
                assert body["error"]["code"] == "bad-json"
                frame_type, body = await _read_frame(reader)
                assert frame_type == protocol.RESPONSE
                assert body["id"] == 2 and body["ok"]
                writer.close()
            finally:
                await server.drain()
            assert server.counters.protocol_errors == 1
        run(scenario())

    def test_oversized_frame_drained_and_reported(self):
        async def scenario():
            server = await _start_server(max_frame_bytes=256)
            try:
                reader, writer = await _open(server)
                huge = b'"' + b"x" * 1024 + b'"'
                writer.write(
                    struct.pack("<IB", len(huge) + 1, protocol.REQUEST)
                    + huge
                )
                writer.write(_frame(
                    protocol.REQUEST, {"id": 3, "op": "ping"}
                ))
                await writer.drain()
                frame_type, body = await _read_frame(reader)
                assert frame_type == protocol.ERROR
                assert body["error"]["code"] == "oversized"
                # Framing stayed synchronized: the next request works.
                frame_type, body = await _read_frame(reader)
                assert frame_type == protocol.RESPONSE
                assert body["id"] == 3 and body["ok"]
                writer.close()
            finally:
                await server.drain()
        run(scenario())

    def test_absurd_declared_length_closes_after_error(self):
        async def scenario():
            server = await _start_server()
            try:
                reader, writer = await _open(server)
                writer.write(struct.pack(
                    "<IB", protocol.HARD_FRAME_LIMIT + 1, protocol.REQUEST
                ))
                await writer.drain()
                frame_type, body = await _read_frame(reader)
                assert frame_type == protocol.ERROR
                assert body["error"]["code"] == "oversized"
                # ...and then EOF: the stream was declared desynchronized.
                assert await asyncio.wait_for(
                    reader.read(), timeout=5.0
                ) == b""
                writer.close()
                # The server itself is fine.
                reader2, writer2 = await _open(server)
                writer2.write(_frame(
                    protocol.REQUEST, {"id": 4, "op": "ping"}
                ))
                await writer2.drain()
                _, body = await _read_frame(reader2)
                assert body["ok"]
                writer2.close()
            finally:
                await server.drain()
        run(scenario())

    def test_truncated_frame_then_eof_is_quietly_dropped(self):
        async def scenario():
            server = await _start_server()
            try:
                _, writer = await _open(server)
                full = _frame(protocol.REQUEST, {"id": 5, "op": "ping"})
                writer.write(full[: len(full) // 2])
                await writer.drain()
                writer.close()
                await asyncio.sleep(0.05)
                # No request ever formed, nothing crashed.
                assert server.counters.requests == 0
                assert server.counters.internal_errors == 0
            finally:
                await server.drain()
        run(scenario())

    def test_wrong_frame_type_and_bad_envelope_get_error_frames(self):
        async def scenario():
            server = await _start_server()
            try:
                reader, writer = await _open(server)
                writer.write(_frame(protocol.RESPONSE, {"id": 1}))
                writer.write(_frame(protocol.REQUEST, ["not", "a", "dict"]))
                writer.write(_frame(protocol.REQUEST, {"op": "ping"}))
                await writer.drain()
                codes = []
                for _ in range(3):
                    frame_type, body = await _read_frame(reader)
                    assert frame_type == protocol.ERROR
                    codes.append(body["error"]["code"])
                assert codes == ["bad-frame", "bad-request", "bad-request"]
                writer.close()
            finally:
                await server.drain()
        run(scenario())

    def test_unknown_op_is_a_per_request_response(self):
        async def scenario():
            server = await _start_server()
            try:
                reader, writer = await _open(server)
                writer.write(_frame(
                    protocol.REQUEST, {"id": 9, "op": "explode"}
                ))
                await writer.drain()
                frame_type, body = await _read_frame(reader)
                assert frame_type == protocol.RESPONSE
                assert body["id"] == 9
                assert not body["ok"]
                assert body["error"]["code"] == "unknown-op"
                for op in protocol.OPS:
                    assert op in body["error"]["message"]
                writer.close()
            finally:
                await server.drain()
        run(scenario())

    def test_fuzz_random_frames_never_crash_the_server(self):
        async def scenario():
            server = await _start_server(max_frame_bytes=4096)
            try:
                # Deterministic pseudo-random garbage: every length and
                # byte pattern below comes from a fixed LCG so failures
                # reproduce.
                state = 0xDEADBEEF

                def rand(n):
                    nonlocal state
                    out = bytearray()
                    while len(out) < n:
                        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
                        out.append(state & 0xFF)
                    return bytes(out)

                for trial in range(30):
                    reader, writer = await _open(server)
                    payload = rand(5 + (trial * 37) % 400)
                    writer.write(payload)
                    await writer.drain()
                    writer.close()
                # Still alive and well-behaved afterwards.
                reader, writer = await _open(server)
                writer.write(_frame(
                    protocol.REQUEST, {"id": 1, "op": "stats"}
                ))
                await writer.drain()
                frame_type, body = await _read_frame(reader)
                assert frame_type == protocol.RESPONSE
                assert body["ok"]
                assert body["result"]["counters"]["internal_errors"] == 0
                writer.close()
            finally:
                await server.drain()
        run(scenario())

    def test_json_bodies_stay_compact_on_the_wire(self):
        raw = protocol.encode_frame(protocol.RESPONSE, {"a": 1, "b": [2]})
        assert b" " not in raw[5:]
        assert json.loads(raw[5:].decode()) == {"a": 1, "b": [2]}
