"""Bit-exactness: a session over the wire == the same spec in-process.

The acceptance proof for the serving layer.  One workload trace is
flattened to instruction events and replayed three ways with the same
predictor spec:

1. :func:`repro.harness.functional.run_functional` (the reference
   program-order evaluation loop);
2. a local :class:`PredictorSession` fed ``apply_event`` directly;
3. a session on a live server, driven over TCP in chunks.

All three must agree on every aggregate counter, and (2) vs (3) must
produce *bit-identical per-load decision records* -- same chosen
component, same speculative value/address, same confident and
squashed sets, load by load.
"""

import asyncio

import pytest

from repro.composite.composite import CompositePredictor
from repro.composite.config import CompositeConfig
from repro.harness.functional import run_functional
from repro.serve.client import ServeClient
from repro.serve.loadgen import trace_to_events
from repro.serve.server import PredictionServer, ServerConfig
from repro.serve.session import PredictorSession, spec_from_name
from repro.workloads.generator import generate_trace

WORKLOAD = "gcc2k"
LENGTH = 4000
SEED = 0


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WORKLOAD, LENGTH, SEED)


@pytest.fixture(scope="module")
def events(trace):
    return trace_to_events(trace)


def _local_records(spec, trace, events):
    session = PredictorSession(spec, initial_memory=trace.initial_memory)
    records = []
    for event in events:
        record = session.apply_event(event)
        if record is not None:
            records.append(record)
    return session, records


def _wire_records(spec, events, chunk_size=257):
    async def scenario():
        server = PredictionServer(ServerConfig())
        await server.start()
        try:
            async with await ServeClient.connect(
                "127.0.0.1", server.port
            ) as client:
                await client.open_session(
                    "wire", spec,
                    workload={
                        "name": WORKLOAD, "length": LENGTH, "seed": SEED,
                    },
                )
                records = []
                for start in range(0, len(events), chunk_size):
                    applied = await client.apply(
                        "wire", events[start:start + chunk_size]
                    )
                    records.extend(
                        r for r in applied["results"] if r is not None
                    )
                closed = await client.close_session("wire")
                assert not client.stream_errors
                return closed["closed"], records
        finally:
            await server.drain()
    return asyncio.run(scenario())


class TestEventStreamEquivalence:
    def test_event_stream_preserves_instruction_count(self, trace, events):
        session = PredictorSession(None)
        for event in events:
            session.apply_event(event)
        assert session.instructions == len(trace)

    @pytest.mark.parametrize("predictor", ["composite", "lvp", "eves-8kb"])
    def test_session_matches_run_functional(self, trace, events, predictor):
        spec = spec_from_name(predictor, 256)
        session, _ = _local_records(spec, trace, events)

        if predictor == "composite":
            reference_host = CompositePredictor(
                CompositeConfig().homogeneous(256)
            )
        else:
            from repro.harness.runner import build_predictor

            reference_host = build_predictor(spec)
        reference = run_functional(trace, reference_host)

        assert session.loads == reference.loads
        assert session.predicted_loads == reference.predicted_loads
        assert session.correct_predictions == reference.correct_predictions
        assert session.instructions == reference.instructions


class TestWireEquivalence:
    def test_wire_records_bit_identical_to_in_process(self, trace, events):
        spec = spec_from_name("composite", 256)
        local_session, local_records = _local_records(spec, trace, events)
        wire_snapshot, wire_records = _wire_records(spec, events)

        assert len(wire_records) == len(local_records)
        for index, (wire, local) in enumerate(
            zip(wire_records, local_records)
        ):
            assert wire == local, f"decision {index} diverged"

        local_snapshot = local_session.snapshot()
        for key in ("events", "instructions", "loads", "predicted_loads",
                    "correct_predictions", "accuracy", "coverage"):
            assert wire_snapshot[key] == local_snapshot[key]

    def test_chunking_does_not_change_decisions(self, trace, events):
        spec = spec_from_name("composite", 128)
        _, small_chunks = _wire_records(spec, events, chunk_size=64)
        _, one_shot = _wire_records(spec, events, chunk_size=8192)
        assert small_chunks == one_shot
