"""Tests for the pipeline resource schedulers."""

import pytest

from repro.pipeline.resources import LaneScheduler, WindowTracker


class TestLaneScheduler:
    def test_parallel_lanes(self):
        lanes = LaneScheduler(2)
        assert lanes.acquire(10) == 10
        assert lanes.acquire(10) == 10
        assert lanes.acquire(10) == 11  # both lanes busy at cycle 10

    def test_out_of_order_acquisition(self):
        """A late booking far in the future must not block an earlier
        ready instruction (k-server min-heap semantics)."""
        lanes = LaneScheduler(2)
        assert lanes.acquire(100) == 100
        assert lanes.acquire(5) == 5

    def test_single_lane_serializes(self):
        lanes = LaneScheduler(1)
        assert lanes.acquire(0) == 0
        assert lanes.acquire(0) == 1
        assert lanes.acquire(0) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            LaneScheduler(0)


class TestWindowTracker:
    def test_no_constraint_until_full(self):
        window = WindowTracker(2)
        assert window.earliest_allocation() == 0
        window.admit(100)
        assert window.earliest_allocation() == 0
        window.admit(200)
        assert window.earliest_allocation() == 100  # oldest release

    def test_sliding(self):
        window = WindowTracker(2)
        window.admit(10)
        window.admit(20)
        window.admit(30)  # displaces the entry released at 10
        assert window.earliest_allocation() == 20

    def test_len(self):
        window = WindowTracker(3)
        window.admit(1)
        window.admit(2)
        assert len(window) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowTracker(0)
