"""Tests for the accuracy monitors (M-AM and PC-AM)."""

import pytest

from repro.composite.accuracy_monitor import (
    InfinitePcAm,
    MAm,
    NullAccuracyMonitor,
    PcAm,
    make_accuracy_monitor,
)


class TestFactory:
    def test_variants(self):
        assert isinstance(make_accuracy_monitor("none"), NullAccuracyMonitor)
        assert isinstance(make_accuracy_monitor("m-am"), MAm)
        assert isinstance(make_accuracy_monitor("pc-am"), PcAm)
        assert isinstance(
            make_accuracy_monitor("pc-am-infinite"), InfinitePcAm
        )

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_accuracy_monitor("bogus")


class TestNull:
    def test_never_silences(self):
        monitor = NullAccuracyMonitor()
        monitor.record(0x1000, {"sap": False}, "sap", False)
        assert not monitor.silenced("sap", 0x1000)


class TestMAm:
    def test_silences_component_above_threshold(self):
        monitor = MAm(mpkp_threshold=3.0)
        for _ in range(100):
            monitor.record(0x1000, {"sap": True}, "sap", True)
        for _ in range(5):
            monitor.record(0x1000, {"sap": False}, "sap", False)
        monitor.end_epoch()  # ~48 MPKP > 3
        assert monitor.silenced("sap", 0x1234)  # global silencing
        assert not monitor.silenced("lvp", 0x1234)

    def test_accurate_component_not_silenced(self):
        monitor = MAm(mpkp_threshold=3.0)
        for _ in range(1000):
            monitor.record(0x1000, {"lvp": True}, "lvp", True)
        monitor.record(0x1000, {"lvp": False}, "lvp", False)
        monitor.end_epoch()  # ~1 MPKP < 3
        assert not monitor.silenced("lvp", 0x1000)

    def test_silenced_component_reenabled_next_epoch(self):
        """A silenced component makes no used predictions, so its next
        epoch rate reads clean and it gets another chance."""
        monitor = MAm(mpkp_threshold=3.0)
        monitor.record(0x1000, {"sap": False}, "sap", False)
        monitor.end_epoch()
        assert monitor.silenced("sap", 0x1000)
        monitor.end_epoch()  # no predictions recorded while silenced
        assert not monitor.silenced("sap", 0x1000)

    def test_only_used_predictions_counted(self):
        monitor = MAm()
        monitor.record(0x1000, {"sap": False, "cap": False}, None, False)
        monitor.end_epoch()
        assert not monitor.silenced("sap", 0x1000)


class TestPcAm:
    def _mispredict(self, monitor, pc, component="sap"):
        monitor.record(pc, {component: False}, component, False)

    def test_allocation_only_on_flush(self):
        monitor = PcAm(entries=64)
        monitor.record(0x1000, {"sap": True}, "sap", True)
        assert monitor._lookup(0x1000) is None
        self._mispredict(monitor, 0x1000)
        assert monitor._lookup(0x1000) is not None

    def test_two_strike_semantics(self):
        """The allocating misprediction is not pre-charged: a PC is
        silenced only by bad behaviour *after* allocation."""
        monitor = PcAm(entries=64)
        self._mispredict(monitor, 0x1000)
        assert not monitor.silenced("sap", 0x1000)
        self._mispredict(monitor, 0x1000)  # now counted: 0/1 -> 0%
        assert monitor.silenced("sap", 0x1000)

    def test_recovers_with_correct_predictions(self):
        monitor = PcAm(entries=64)
        self._mispredict(monitor, 0x1000)
        self._mispredict(monitor, 0x1000)
        assert monitor.silenced("sap", 0x1000)
        for _ in range(30):
            monitor.record(0x1000, {"sap": True}, "sap", True)
        assert not monitor.silenced("sap", 0x1000)  # 30/31 > 95%

    def test_per_pc_isolation(self):
        monitor = PcAm(entries=64)
        self._mispredict(monitor, 0x1000)
        self._mispredict(monitor, 0x1000)
        assert monitor.silenced("sap", 0x1000)
        assert not monitor.silenced("sap", 0x2000)

    def test_per_component_isolation(self):
        monitor = PcAm(entries=64)
        self._mispredict(monitor, 0x1000)
        monitor.record(0x1000, {"sap": False, "lvp": True}, "sap", False)
        assert monitor.silenced("sap", 0x1000)
        assert not monitor.silenced("lvp", 0x1000)

    def test_counter_halving_preserves_ratio(self):
        monitor = PcAm(entries=64)
        self._mispredict(monitor, 0x1000)
        for _ in range(300):  # drive counters past the 8-bit MSB
            monitor.record(0x1000, {"sap": True}, "sap", True)
        entry = monitor._lookup(0x1000)
        assert max(entry.correct.values()) < 128
        assert entry.accuracy("sap") > 0.95

    def test_power_of_two_entries_required(self):
        with pytest.raises(ValueError):
            PcAm(entries=60)

    def test_storage_bits(self):
        assert PcAm(entries=64).storage_bits() == 64 * (10 + 64)

    def test_updates_all_confident_components(self):
        """Non-chosen confident components are monitored too."""
        monitor = PcAm(entries=64)
        self._mispredict(monitor, 0x1000, "cap")
        monitor.record(0x1000, {"cap": False, "sap": False}, "cap", False)
        assert monitor.silenced("sap", 0x1000)


class TestInfinitePcAm:
    def test_no_capacity_pressure(self):
        monitor = InfinitePcAm()
        for k in range(1000):
            pc = 0x1000 + 4 * k
            monitor.record(pc, {"sap": False}, "sap", False)
            monitor.record(pc, {"sap": False}, "sap", False)
        assert all(
            monitor.silenced("sap", 0x1000 + 4 * k) for k in range(1000)
        )

    def test_finite_equivalent_semantics(self):
        finite, infinite = PcAm(entries=64), InfinitePcAm()
        for monitor in (finite, infinite):
            monitor.record(0x1000, {"sap": False}, "sap", False)
            monitor.record(0x1000, {"sap": False}, "sap", False)
        assert finite.silenced("sap", 0x1000) == infinite.silenced("sap", 0x1000)
