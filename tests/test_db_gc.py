"""Results-database garbage collection: ``repro-lvp db gc``.

An entry recorded under an older package version (or an older
semantics registration) can never be served again -- its fingerprint
stopped matching the moment the version bumped -- so ``gc`` evicts it.
Entries without version metadata are kept (``unversioned``): eviction
must never guess.
"""

import json

import pytest

from repro.cli import main
from repro.harness import resultsdb
from repro.harness.resultsdb import ResultsDb, register_semantics


@pytest.fixture
def clean_registry(monkeypatch):
    """Isolate the process-global semantics registry per test."""
    monkeypatch.setattr(resultsdb, "_SEMANTICS", dict(resultsdb._SEMANTICS))


def fingerprint(tag: str) -> str:
    """A syntactically valid (64-hex) fingerprint, distinct per tag."""
    import hashlib

    return hashlib.sha256(tag.encode()).hexdigest()


def store(db: ResultsDb, tag: str, meta: dict | None) -> str:
    fp = fingerprint(tag)
    assert db.store(fp, {"tag": tag}, meta=meta)
    return fp


def current_meta(**overrides) -> dict:
    meta = {
        "fn": "_cells:echo_cell",
        "code_version": resultsdb._package_version(),
        "semantics": resultsdb.semantics_versions(),
    }
    meta.update(overrides)
    return meta


class TestGc:
    def test_stale_code_version_evicted(self, tmp_path, clean_registry):
        db = ResultsDb(tmp_path / "db")
        keep = store(db, "keep", current_meta())
        stale = store(db, "stale", current_meta(code_version="0.0-old"))
        report = db.gc()
        assert report["scanned"] == 2
        assert report["stale"] == 1 and report["removed"] == 1
        assert report["kept"] == 1
        assert db.entry_path(keep).exists()
        assert not db.entry_path(stale).exists()

    def test_stale_semantics_evicted(self, tmp_path, clean_registry):
        register_semantics("gcmod", 5)
        db = ResultsDb(tmp_path / "db")
        keep = store(db, "match", current_meta())
        stale = store(
            db, "mismatch",
            current_meta(semantics={"gcmod": 4}),
        )
        report = db.gc()
        assert report["stale"] == 1 and report["removed"] == 1
        assert db.entry_path(keep).exists()
        assert not db.entry_path(stale).exists()

    def test_unversioned_entries_kept(self, tmp_path, clean_registry):
        db = ResultsDb(tmp_path / "db")
        bare = store(db, "bare", None)
        nosem = store(db, "nosem", {"code_version":
                                    resultsdb._package_version()})
        report = db.gc()
        assert report["unversioned"] == 2
        assert report["stale"] == 0 and report["removed"] == 0
        assert db.entry_path(bare).exists()
        assert db.entry_path(nosem).exists()

    def test_dry_run_deletes_nothing(self, tmp_path, clean_registry):
        db = ResultsDb(tmp_path / "db")
        stale = store(db, "stale", current_meta(code_version="0.0-old"))
        report = db.gc(dry_run=True)
        assert report["dry_run"] is True
        assert report["stale"] == 1 and report["removed"] == 0
        assert db.entry_path(stale).exists()
        # A real pass after the rehearsal evicts it.
        assert db.gc()["removed"] == 1
        assert not db.entry_path(stale).exists()

    def test_gc_clears_memo_after_eviction(self, tmp_path, clean_registry):
        db = ResultsDb(tmp_path / "db")
        stale = store(db, "stale", current_meta(code_version="0.0-old"))
        hit, _ = db.lookup(stale)
        assert hit  # memoized
        db.gc()
        hit, _ = db.lookup(stale)
        assert not hit

    def test_empty_database(self, tmp_path):
        report = ResultsDb(tmp_path / "nothing").gc()
        assert report["scanned"] == 0 and report["removed"] == 0


class TestDbCli:
    def test_gc_via_cli(self, tmp_path, monkeypatch, capsys,
                        clean_registry):
        root = tmp_path / "db"
        db = ResultsDb(root)
        store(db, "stale", current_meta(code_version="0.0-old"))
        monkeypatch.delenv(resultsdb.ENV_VAR, raising=False)
        assert main(["db", "gc", "--results-dir", str(root)]) == 0
        out = capsys.readouterr().out
        assert json.loads(out)["removed"] == 1

    def test_gc_honours_env_var(self, tmp_path, monkeypatch, capsys,
                                clean_registry):
        root = tmp_path / "db"
        store(ResultsDb(root), "stale",
              current_meta(code_version="0.0-old"))
        monkeypatch.setenv(resultsdb.ENV_VAR, str(root))
        assert main(["db", "gc", "--dry-run"]) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out)["stale"] == 1
        assert "dry run" in captured.err

    def test_no_database_configured_is_exit_2(self, monkeypatch, capsys):
        monkeypatch.delenv(resultsdb.ENV_VAR, raising=False)
        assert main(["db", "gc"]) == 2
        assert "no results database configured" in capsys.readouterr().err

    def test_path_not_a_directory_is_exit_2(self, tmp_path, monkeypatch,
                                            capsys):
        bogus = tmp_path / "file"
        bogus.write_text("not a dir")
        monkeypatch.delenv(resultsdb.ENV_VAR, raising=False)
        assert main(["db", "gc", "--results-dir", str(bogus)]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_unknown_action_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["db", "defrag"])
        assert err.value.code == 2
