"""Tests for the ITTAGE indirect-target predictor."""

from repro.branch.history import HistorySet
from repro.branch.ittage import IttageConfig, IttagePredictor
from repro.common.rng import DeterministicRng


class TestConfig:
    def test_history_lengths_increasing(self):
        lengths = IttageConfig().history_lengths()
        assert all(b > a for a, b in zip(lengths, lengths[1:]))

    def test_storage_positive(self):
        assert IttagePredictor().storage_bits() > 0


class TestLearning:
    def test_monomorphic_target(self):
        predictor = IttagePredictor(rng=DeterministicRng(0))
        histories = HistorySet()
        pc, target = 0x3000, 0x7000
        for _ in range(10):
            ctx = predictor.predict(pc, histories.snapshot())
            predictor.train(pc, target, ctx)
        assert predictor.predict(pc, histories.snapshot()).target == target

    def test_history_correlated_targets(self):
        """Target alternates with the preceding branch direction; with
        history the predictor should converge to high accuracy."""
        predictor = IttagePredictor(rng=DeterministicRng(0))
        histories = HistorySet()
        pc = 0x3000
        correct = 0
        total = 0
        for i in range(600):
            direction = (i % 2) == 0
            histories.push_branch(0x2000, direction)
            target = 0x7000 if direction else 0x8000
            ctx = predictor.predict(pc, histories.snapshot())
            if i > 300:
                total += 1
                correct += ctx.target == target
            predictor.train(pc, target, ctx)
        assert correct / total > 0.85

    def test_prediction_is_pure(self):
        predictor = IttagePredictor(rng=DeterministicRng(0))
        snap = HistorySet().snapshot()
        assert predictor.predict(0x10, snap) == predictor.predict(0x10, snap)
