"""Server behaviour tests: RPCs, batching, backpressure, drain, SIGTERM.

The acceptance-critical contracts live here: a burst above the queue
bound receives explicit ``backpressure`` responses (no silent drops),
and a SIGTERM during load finishes every in-flight request before the
process exits (tested both in-process via ``drain()`` and end-to-end
against a real ``repro-lvp serve`` subprocess).
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve.client import ServeClient, ServeError
from repro.serve.server import (
    MAX_EVENTS_PER_REQUEST,
    PredictionServer,
    ServerConfig,
)

REPO = Path(__file__).resolve().parent.parent


def run(coro):
    return asyncio.run(coro)


async def _start_server(**overrides) -> PredictionServer:
    server = PredictionServer(ServerConfig(**overrides))
    await server.start()
    return server


class TestRpcs:
    def test_full_rpc_lifecycle(self):
        async def scenario():
            server = await _start_server()
            try:
                async with await ServeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    assert (await client.ping())["pong"]
                    opened = await client.open_session(
                        "s1", {"kind": "component", "name": "lvp",
                               "entries": 64},
                    )
                    assert opened["session"] == "s1"
                    assert opened["storage_bits"] > 0
                    applied = await client.apply("s1", [
                        {"k": "s", "pc": 1, "addr": 0x2000, "size": 8,
                         "value": 5},
                        {"k": "l", "pc": 2, "addr": 0x2000, "size": 8,
                         "value": 5, "pred": True},
                        {"k": "t", "n": 10},
                    ])
                    assert len(applied["results"]) == 3
                    assert applied["results"][1] is not None
                    prediction = await client.predict("s1", 0x40)
                    assert "prediction" in prediction
                    trained = await client.train("s1", 0x2000, 8, 5)
                    assert "trained" in trained
                    stats = await client.stats()
                    assert stats["sessions"]["active"] == 1
                    assert stats["counters"]["responses_ok"] >= 5
                    closed = await client.close_session("s1")
                    assert closed["closed"]["loads"] == 2
            finally:
                await server.drain()
        run(scenario())

    def test_session_errors_are_structured_responses(self):
        async def scenario():
            server = await _start_server()
            try:
                async with await ServeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    with pytest.raises(ServeError) as excinfo:
                        await client.apply("ghost", [])
                    assert excinfo.value.code == "unknown-session"
                    with pytest.raises(ServeError) as excinfo:
                        await client.open_session(
                            "s1", {"kind": "mystery"}
                        )
                    assert excinfo.value.code == "bad-spec"
                    await client.open_session("s1", None)
                    with pytest.raises(ServeError) as excinfo:
                        await client.apply("s1", [
                            {"k": "t", "n": 1}, {"k": "zzz"},
                        ])
                    assert excinfo.value.code == "bad-event"
                    assert "event 1" in excinfo.value.message
                    # The server survived every one of those.
                    assert (await client.ping())["pong"]
                    assert server.counters.internal_errors == 0
            finally:
                await server.drain()
        run(scenario())

    def test_apply_event_cap_enforced(self):
        async def scenario():
            server = await _start_server()
            try:
                async with await ServeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    await client.open_session("s1", None)
                    events = [{"k": "t", "n": 1}] * (
                        MAX_EVENTS_PER_REQUEST + 1
                    )
                    with pytest.raises(ServeError, match="limit"):
                        await client.apply("s1", events)
            finally:
                await server.drain()
        run(scenario())

    def test_lru_eviction_visible_in_stats(self):
        async def scenario():
            server = await _start_server(max_sessions=2)
            try:
                async with await ServeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    for sid in ("a", "b", "c"):
                        await client.open_session(sid, None)
                    stats = await client.stats()
                    assert stats["sessions"]["active"] == 2
                    assert stats["sessions"]["evictions"] == 1
                    with pytest.raises(ServeError) as excinfo:
                        await client.apply("a", [])
                    assert excinfo.value.code == "unknown-session"
            finally:
                await server.drain()
        run(scenario())

    def test_request_timeout_answers_stale_requests(self):
        async def scenario():
            server = await _start_server(request_timeout=0.001)
            try:
                # Stall the scheduler so queued requests go stale.
                server._scheduler.cancel()
                try:
                    await server._scheduler
                except asyncio.CancelledError:
                    pass
                client = await ServeClient.connect("127.0.0.1", server.port)
                future = await client.submit("ping")
                await asyncio.sleep(0.05)
                server._scheduler = asyncio.create_task(
                    server._run_scheduler()
                )
                with pytest.raises(ServeError) as excinfo:
                    await asyncio.wait_for(future, timeout=5.0)
                assert excinfo.value.code == "timeout"
                assert server.counters.timeouts == 1
                await client.close()
            finally:
                await server.drain()
        run(scenario())


class TestBatching:
    def test_concurrent_requests_coalesce_into_batches(self):
        async def scenario():
            server = await _start_server(max_batch=64)
            try:
                client = await ServeClient.connect("127.0.0.1", server.port)
                await client.open_session("s1", None)
                futures = [
                    await client.submit("ping") for _ in range(32)
                ]
                await asyncio.gather(*futures)
                assert server.counters.max_batch_seen > 1
                await client.close()
            finally:
                await server.drain()
        run(scenario())

    def test_unbatched_mode_processes_one_per_tick(self):
        async def scenario():
            server = await _start_server(micro_batching=False)
            try:
                client = await ServeClient.connect("127.0.0.1", server.port)
                futures = [
                    await client.submit("ping") for _ in range(16)
                ]
                await asyncio.gather(*futures)
                assert server.counters.max_batch_seen == 1
                assert server.counters.batches >= 16
                await client.close()
            finally:
                await server.drain()
        run(scenario())


class TestBackpressure:
    def test_burst_above_queue_bound_gets_explicit_backpressure(self):
        async def scenario():
            server = await _start_server(max_queue=4, max_batch=4)
            try:
                # Stall the scheduler so the queue genuinely fills.
                server._scheduler.cancel()
                try:
                    await server._scheduler
                except asyncio.CancelledError:
                    pass
                client = await ServeClient.connect("127.0.0.1", server.port)
                burst = 12
                futures = [
                    await client.submit("ping") for _ in range(burst)
                ]
                # Every response arrives even with the scheduler down:
                # overflow is answered inline by the read loop.
                await asyncio.sleep(0.1)
                rejected = [
                    f for f in futures
                    if f.done() and isinstance(f.exception(), ServeError)
                ]
                assert len(rejected) == burst - 4
                for future in rejected:
                    assert future.exception().code == "backpressure"
                    assert "retry" in future.exception().message
                assert server.counters.backpressure == burst - 4
                # Nothing was silently dropped: accepted + rejected
                # accounts for the whole burst.
                assert server._queue.qsize() == 4
                # Restart the scheduler; the accepted four complete.
                server._scheduler = asyncio.create_task(
                    server._run_scheduler()
                )
                settled = await asyncio.gather(
                    *futures, return_exceptions=True
                )
                assert sum(
                    1 for r in settled if isinstance(r, dict)
                ) == 4
                await client.close()
            finally:
                await server.drain()
        run(scenario())


class TestDrain:
    def test_drain_finishes_queued_requests_then_rejects_new_ones(self):
        async def scenario():
            server = await _start_server()
            client = await ServeClient.connect("127.0.0.1", server.port)
            await client.open_session("s1", None)
            futures = [
                await client.submit(
                    "apply", session="s1",
                    events=[{"k": "t", "n": 100}] * 50,
                )
                for _ in range(8)
            ]
            # Wait until the server has accepted the whole burst (the
            # open + 8 applies), so the drain genuinely races work.
            while server.counters.requests < 9:
                await asyncio.sleep(0.005)
            drain_task = asyncio.create_task(server.drain())
            # Every accepted in-flight request completes during drain.
            results = await asyncio.gather(*futures, return_exceptions=True)
            assert all(isinstance(r, dict) for r in results), results
            await drain_task
            assert server._queue.qsize() == 0
            assert server.counters.dropped_responses == 0
            await client.close()
        run(scenario())

    def test_requests_during_drain_get_shutting_down_responses(self):
        async def scenario():
            server = await _start_server()
            client = await ServeClient.connect("127.0.0.1", server.port)
            assert (await client.ping())["pong"]
            # Drain has begun but this connection is still being read:
            # new requests are answered with an explicit refusal.
            server._draining = True
            with pytest.raises(ServeError) as excinfo:
                await client.ping()
            assert excinfo.value.code == "shutting-down"
            await client.close()
            await server.drain()
        run(scenario())


def _wait_for_port(stdout) -> int:
    line = stdout.readline()
    assert line.startswith("serving on"), line
    return int(line.strip().rsplit(":", 1)[1])


@pytest.mark.slow
class TestSigtermEndToEnd:
    def test_sigterm_under_load_finishes_in_flight_requests(self, tmp_path):
        """`repro-lvp serve` + SIGTERM mid-burst == graceful drain."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env,
        )
        try:
            port = _wait_for_port(proc.stdout)

            async def burst():
                client = await ServeClient.connect("127.0.0.1", port)
                await client.open_session("s1", None)
                futures = [
                    await client.submit(
                        "apply", session="s1",
                        events=[{"k": "t", "n": 50}] * 40,
                    )
                    for _ in range(20)
                ]
                # SIGTERM while those requests are in flight.
                proc.send_signal(signal.SIGTERM)
                results = await asyncio.gather(
                    *futures, return_exceptions=True
                )
                await client.close()
                return results

            results = run(burst())
            answered = sum(1 for r in results if isinstance(r, dict))
            assert answered > 0, results
            # Every non-answered request got an explicit shutting-down
            # response or a clean connection close -- never silence
            # with the process still alive.
            for r in results:
                assert isinstance(r, (dict, ServeError, ConnectionError))
            out, err = proc.communicate(timeout=30)
            assert proc.returncode == 0, err
            stats = json.loads(out)
            assert stats["counters"]["responses_ok"] >= answered
            assert stats["draining"] is True
            assert "drained cleanly" in err
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
