"""Tests for the footnote-1 predictors (LAP, SVP)."""

from conftest import make_outcome, make_probe, train_strided

from repro.common.rng import DeterministicRng
from repro.predictors.lap import LapPredictor
from repro.predictors.svp import SvpPredictor
from repro.predictors.types import PredictionKind


def _lap(entries=256):
    return LapPredictor(entries, DeterministicRng(0))


def _svp(entries=256):
    return SvpPredictor(entries, DeterministicRng(0))


class TestLap:
    def test_predicts_repeated_address(self):
        lap = _lap()
        for _ in range(30):
            lap.train(make_outcome(pc=0x1000, addr=0x9000))
        prediction = lap.predict(make_probe(pc=0x1000))
        assert prediction is not None
        assert prediction.kind is PredictionKind.ADDRESS
        assert prediction.addr == 0x9000

    def test_strided_addresses_never_confident(self):
        """The defining gap vs SAP: LAP cannot follow strides."""
        lap = _lap()
        train_strided(lap, pc=0x1000, base=0x8000, stride=8, times=100)
        assert lap.predict(make_probe(pc=0x1000)) is None

    def test_address_change_resets(self):
        lap = _lap()
        for _ in range(30):
            lap.train(make_outcome(pc=0x1000, addr=0x9000))
        lap.train(make_outcome(pc=0x1000, addr=0xA000))
        assert lap.predict(make_probe(pc=0x1000)) is None

    def test_penalize(self):
        lap = _lap()
        for _ in range(30):
            lap.train(make_outcome(pc=0x1000, addr=0x9000))
        lap.penalize(make_outcome(pc=0x1000, addr=0x9000))
        assert lap.predict(make_probe(pc=0x1000)) is None

    def test_storage(self):
        assert _lap(1024).storage_bits() == 1024 * 67


class TestSvp:
    def test_predicts_strided_values(self):
        svp = _svp()
        for i in range(300):
            svp.train(make_outcome(pc=0x1000, value=100 + 4 * i))
        prediction = svp.predict(make_probe(pc=0x1000))
        assert prediction is not None
        assert prediction.kind is PredictionKind.VALUE
        assert prediction.value == 100 + 4 * 300

    def test_constant_is_stride_zero(self):
        svp = _svp()
        for _ in range(300):
            svp.train(make_outcome(pc=0x1000, value=7))
        assert svp.predict(make_probe(pc=0x1000)).value == 7

    def test_inflight_compensation(self):
        svp = _svp()
        for i in range(300):
            svp.train(make_outcome(pc=0x1000, value=10 + 2 * i))
        p0 = svp.predict(make_probe(pc=0x1000, inflight=0))
        p2 = svp.predict(make_probe(pc=0x1000, inflight=2))
        assert p2.value == p0.value + 4

    def test_unrepresentable_stride_never_confident(self):
        """Deltas outside the 16-bit stride field must not build
        confidence on their wrapped value."""
        svp = _svp()
        for i in range(300):
            svp.train(make_outcome(pc=0x1000, value=i * (1 << 20)))
        assert svp.predict(make_probe(pc=0x1000)) is None

    def test_negative_stride(self):
        svp = _svp()
        for i in range(300):
            svp.train(make_outcome(pc=0x1000, value=(10_000 - 3 * i) & ((1 << 64) - 1)))
        prediction = svp.predict(make_probe(pc=0x1000))
        assert prediction.value == (10_000 - 3 * 300) & ((1 << 64) - 1)

    def test_storage(self):
        assert _svp(1024).storage_bits() == 1024 * 97


class TestOrdering:
    def test_selection_and_training_positions(self):
        """Extras slot into the generalized orders behind their
        same-class canonical components."""
        from repro.composite.composite import selection_order, training_order
        from repro.predictors import make_component

        components = {
            name: make_component(name, 64)
            for name in ("lvp", "sap", "cvp", "cap", "lap", "svp")
        }
        selection = selection_order(components)
        training = training_order(components)
        assert selection.index("svp") > selection.index("lvp")
        assert selection.index("lap") > selection.index("sap")
        assert selection.index("svp") < selection.index("cap")  # value first
        assert training[:3] == ("lvp", "svp", "cvp")

    def test_canonical_orders_preserved(self):
        from repro.composite.composite import (
            SELECTION_ORDER,
            TRAINING_ORDER,
            selection_order,
            training_order,
        )
        from repro.predictors import COMPONENT_NAMES, make_component

        components = {n: make_component(n, 64) for n in COMPONENT_NAMES}
        assert selection_order(components) == SELECTION_ORDER
        assert training_order(components) == TRAINING_ORDER
