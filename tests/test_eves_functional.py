"""EVES behaviour on the synthetic suite (functional mode)."""

from repro.eves import eves_8kb, eves_32kb
from repro.harness.functional import run_functional
from repro.pipeline.vp import EvesAdapter
from repro.workloads import generate_trace


class TestEvesOnSuite:
    def test_reasonable_coverage_and_accuracy(self):
        result = run_functional(
            generate_trace("coremark", 15_000), EvesAdapter(eves_32kb())
        )
        assert 0.05 < result.coverage < 0.8
        assert result.accuracy > 0.97

    def test_bigger_budget_not_worse(self):
        trace = generate_trace("linpack", 15_000)
        small = run_functional(trace, EvesAdapter(eves_8kb()))
        large = run_functional(trace, EvesAdapter(eves_32kb()))
        assert large.coverage >= small.coverage - 0.05

    def test_composite_covers_more_than_eves(self):
        """The heart of Figure 11: value-only EVES cannot reach the
        address-predictable loads the composite covers via SAP/CAP."""
        from repro.composite import CompositeConfig, CompositePredictor

        trace = generate_trace("mpeg2dec", 15_000)
        eves = run_functional(trace, EvesAdapter(eves_32kb()))
        composite = run_functional(trace, CompositePredictor(
            CompositeConfig(epoch_instructions=1250).homogeneous(256)
        ))
        assert composite.coverage > eves.coverage
