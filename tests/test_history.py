"""Tests for speculative history registers."""

from repro.branch.history import (
    LOAD_PATH_BITS,
    MAX_DIRECTION_BITS,
    HistorySet,
)


class TestDirectionHistory:
    def test_shifts_outcomes(self):
        h = HistorySet()
        h.push_branch(0x1000, True)
        h.push_branch(0x1004, False)
        h.push_branch(0x1008, True)
        assert h.direction & 0b111 == 0b101

    def test_direction_bits_window(self):
        h = HistorySet()
        for i in range(10):
            h.push_branch(0x1000, i % 2 == 0)
        assert h.direction_bits(4) == h.direction & 0b1111
        assert h.direction_bits(0) == 0

    def test_bounded_width(self):
        h = HistorySet()
        for i in range(MAX_DIRECTION_BITS + 100):
            h.push_branch(0x1000 + 4 * i, True)
        assert h.direction < (1 << MAX_DIRECTION_BITS)


class TestPathHistories:
    def test_unconditional_updates_path_not_direction(self):
        h = HistorySet()
        h.push_unconditional(0x2004)
        assert h.direction == 0

    def test_memory_path_includes_loads_and_stores(self):
        """Stores must shift the memory-path register (Table V's CAP
        behaviour depends on it)."""
        loads_only = HistorySet()
        loads_only.push_memory(0x3004)
        with_store = HistorySet()
        with_store.push_memory(0x3004)
        with_store.push_memory(0x4008)  # e.g. a store PC
        assert loads_only.load_path != with_store.load_path

    def test_load_path_bounded(self):
        h = HistorySet()
        for i in range(100):
            h.push_memory(0x1000 + 4 * i)
        assert h.load_path < (1 << LOAD_PATH_BITS)

    def test_push_load_alias(self):
        a, b = HistorySet(), HistorySet()
        a.push_load(0x1004)
        b.push_memory(0x1004)
        assert a.load_path == b.load_path


class TestSnapshots:
    def test_snapshot_restore(self):
        h = HistorySet()
        h.push_branch(0x1000, True)
        h.push_memory(0x2004)
        snap = h.snapshot()
        h.push_branch(0x1008, False)
        h.push_memory(0x3008)
        h.restore(snap)
        assert h.direction == snap.direction
        assert h.path == snap.path
        assert h.load_path == snap.load_path

    def test_snapshot_is_immutable_copy(self):
        h = HistorySet()
        snap = h.snapshot()
        h.push_branch(0x1000, True)
        assert snap.direction == 0
