"""Tests for forward probabilistic counters."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.fpc import ForwardProbabilisticCounter, FpcVector
from repro.common.rng import DeterministicRng


class TestFpcVector:
    def test_from_ratios(self):
        vector = FpcVector.from_ratios(["1", "1/4", "1/4"])
        assert vector.maximum == 3
        assert vector.effective_confidence() == 9

    def test_effective_confidence_partial(self):
        vector = FpcVector.from_ratios(["1", "1/2", "1/4"])
        assert vector.effective_confidence(1) == 1
        assert vector.effective_confidence(2) == 3
        assert vector.effective_confidence(3) == 7

    def test_probability_at_saturation_is_zero(self):
        vector = FpcVector.from_ratios(["1", "1/2"])
        assert vector.probability_at(2) == 0
        assert vector.probability_at(0) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FpcVector(())

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(ValueError):
            FpcVector.from_ratios(["1", "2"])
        with pytest.raises(ValueError):
            FpcVector.from_ratios(["0"])

    def test_threshold_out_of_range(self):
        vector = FpcVector.from_ratios(["1", "1/2"])
        with pytest.raises(ValueError):
            vector.effective_confidence(3)

    @given(st.lists(
        st.sampled_from(["1", "1/2", "1/4", "1/8"]), min_size=1, max_size=8
    ))
    def test_effective_confidence_at_least_levels(self, ratios):
        # Each level takes at least one observation.
        vector = FpcVector.from_ratios(ratios)
        assert vector.effective_confidence() >= len(ratios)


class TestForwardProbabilisticCounter:
    def test_deterministic_increments(self):
        vector = FpcVector.from_ratios(["1", "1", "1"])
        counter = ForwardProbabilisticCounter(vector, DeterministicRng(0))
        assert counter.increment() == 1
        assert counter.increment() == 2
        assert counter.increment() == 3
        assert counter.increment() == 3  # saturates

    def test_reset(self):
        vector = FpcVector.from_ratios(["1", "1"])
        counter = ForwardProbabilisticCounter(vector, DeterministicRng(0))
        counter.increment()
        counter.reset()
        assert counter.value == 0

    def test_at_least(self):
        vector = FpcVector.from_ratios(["1", "1"])
        counter = ForwardProbabilisticCounter(vector, DeterministicRng(0))
        counter.increment()
        assert counter.at_least(1)
        assert not counter.at_least(2)

    def test_value_validation(self):
        vector = FpcVector.from_ratios(["1"])
        with pytest.raises(ValueError):
            ForwardProbabilisticCounter(vector, DeterministicRng(0), value=5)

    def test_expected_observations_statistics(self):
        """Mean observations to saturate tracks the analytic expectation."""
        vector = FpcVector.from_ratios(["1", "1/2", "1/4"])
        expected = float(vector.effective_confidence())  # 7
        rng = DeterministicRng(7, "fpc-stats")
        trials = []
        for _ in range(400):
            counter = ForwardProbabilisticCounter(vector, rng)
            observations = 0
            while counter.value < vector.maximum:
                counter.increment()
                observations += 1
            trials.append(observations)
        mean = sum(trials) / len(trials)
        assert expected * 0.8 < mean < expected * 1.2

    @settings(max_examples=25)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_never_exceeds_maximum(self, seed):
        vector = FpcVector.from_ratios(["1/2", "1/2"])
        counter = ForwardProbabilisticCounter(vector, DeterministicRng(seed))
        for _ in range(50):
            counter.increment()
            assert 0 <= counter.value <= vector.maximum


class TestTableIvVectors:
    def test_paper_effective_confidences(self):
        from repro.predictors.fpc_vectors import (
            CAP_FPC, CVP_FPC, LVP_FPC, SAP_FPC,
        )
        assert LVP_FPC.effective_confidence() == 64
        assert SAP_FPC.effective_confidence() == 9
        assert CVP_FPC.effective_confidence() == 16
        assert CAP_FPC.effective_confidence() == 4

    def test_table_iv_rows_complete(self):
        from repro.predictors.fpc_vectors import table_iv_rows

        rows = table_iv_rows()
        assert [r["predictor"] for r in rows] == ["LVP", "SAP", "CVP", "CAP"]
        assert [r["bits_per_entry"] for r in rows] == [81, 77, 81, 67]
        for row in rows:
            assert sum(row["fields"].values()) <= row["bits_per_entry"]

    def test_fields_sum_to_entry_bits(self):
        from repro.predictors.fpc_vectors import table_iv_rows

        for row in table_iv_rows():
            assert sum(row["fields"].values()) == row["bits_per_entry"]
