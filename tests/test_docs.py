"""Documentation-contract tests: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import repro

EXEMPT_MODULES = {"repro.__main__"}


def _public_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in EXEMPT_MODULES:
            continue
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        yield importlib.import_module(info.name)


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            module.__name__ for module in _public_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert not undocumented

    def test_every_public_class_documented(self):
        undocumented = []
        for module in _public_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isclass(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue  # re-export
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented

    def test_every_public_function_documented(self):
        undocumented = []
        for module in _public_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isfunction(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented

    def test_version_exported(self):
        assert repro.__version__
