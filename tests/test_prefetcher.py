"""Tests for the stride prefetcher."""

from repro.memory.prefetcher import StridePrefetcher


class TestStrideDetection:
    def test_confirmed_stride_prefetches_ahead(self):
        pf = StridePrefetcher(entries=64, degree=2, block_bytes=64)
        pc = 0x1000
        issued = []
        for i in range(6):
            issued = pf.observe(pc, 0x8000 + i * 64)
        assert issued  # steady state reached
        assert issued[0] == (0x8000 + 6 * 64) & ~63

    def test_zero_stride_never_prefetches(self):
        pf = StridePrefetcher()
        for _ in range(10):
            issued = pf.observe(0x1000, 0x8000)
        assert issued == []

    def test_random_addresses_never_reach_steady(self):
        pf = StridePrefetcher()
        addrs = [0x8000, 0x9123, 0x8777, 0xA050, 0x8004, 0xBEEF & ~1]
        total = sum(len(pf.observe(0x1000, a)) for a in addrs)
        assert total == 0

    def test_stride_change_resets(self):
        pf = StridePrefetcher(degree=1)
        for i in range(6):
            pf.observe(0x1000, 0x8000 + i * 64)
        # Break the stride: state decays, no immediate prefetch.
        assert pf.observe(0x1000, 0x20000) == []

    def test_per_pc_isolation(self):
        pf = StridePrefetcher()
        for i in range(6):
            pf.observe(0x1000, 0x8000 + i * 64)
            issued_other = pf.observe(0x2000, 0x10000)  # constant address
        assert issued_other == []

    def test_issued_counter(self):
        pf = StridePrefetcher(degree=2)
        for i in range(8):
            pf.observe(0x1000, 0x8000 + i * 128)
        assert pf.issued > 0
