"""Tests for the banked tagged table (fusion substrate)."""

from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors.table import INVALID_TAG, BankedTable


@dataclass(slots=True)
class _Entry:
    tag: int = INVALID_TAG
    confidence: int = 0
    payload: int = 0


class TestLookup:
    def test_miss_on_empty(self):
        table = BankedTable(8, _Entry)
        assert table.find(0, 5) is None

    def test_find_after_write(self):
        table = BankedTable(8, _Entry)
        entry, hit = table.find_or_victim(3, 7)
        assert not hit
        entry.tag = 7
        entry.payload = 42
        found = table.find(3, 7)
        assert found is not None and found.payload == 42

    def test_victim_prefers_invalid(self):
        table = BankedTable(4, _Entry)
        table.add_banks(1)
        first, _ = table.find_or_victim(0, 1)
        first.tag = 1
        first.confidence = 0  # low confidence but valid
        victim, hit = table.find_or_victim(0, 2)
        assert not hit
        assert victim.tag == INVALID_TAG  # the bank-2 invalid slot

    def test_victim_prefers_lowest_confidence(self):
        table = BankedTable(4, _Entry)
        table.add_banks(1)
        a, _ = table.find_or_victim(0, 1)
        a.tag, a.confidence = 1, 3
        b = table.find(0, 1)
        # fill second bank
        c, hit = table.find_or_victim(0, 2)
        assert not hit
        c.tag, c.confidence = 2, 1
        victim, hit = table.find_or_victim(0, 9)
        assert not hit
        assert victim is c  # confidence 1 < 3


class TestBanks:
    def test_add_and_remove_banks(self):
        table = BankedTable(16, _Entry)
        assert table.num_banks == 1
        table.add_banks(3)
        assert table.num_banks == 4
        assert table.total_entries == 64
        table.remove_extra_banks()
        assert table.num_banks == 1

    def test_original_bank_survives_unfusion(self):
        table = BankedTable(4, _Entry)
        entry, _ = table.find_or_victim(1, 5)
        entry.tag = 5
        table.add_banks(2)
        table.remove_extra_banks()
        assert table.find(1, 5) is not None

    def test_negative_banks_rejected(self):
        with pytest.raises(ValueError):
            BankedTable(4, _Entry).add_banks(-1)

    def test_flush(self):
        table = BankedTable(4, _Entry)
        entry, _ = table.find_or_victim(0, 3)
        entry.tag = 3
        entry.confidence = 2
        table.flush()
        assert table.find(0, 3) is None

    def test_entries_iterates_all_banks(self):
        table = BankedTable(4, _Entry)
        table.add_banks(1)
        assert sum(1 for _ in table.entries()) == 8


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=7),    # index
        st.integers(min_value=0, max_value=30),   # tag
    ), max_size=60))
    def test_find_agrees_with_shadow(self, operations):
        """After inserting (index, tag) pairs, find() must return the
        entry whose tag was most recently installed at that index, as
        long as it has not been victimized."""
        table = BankedTable(8, _Entry)
        for index, tag in operations:
            entry, hit = table.find_or_victim(index, tag)
            if not hit:
                entry.tag = tag
                entry.confidence = 0
            found = table.find(index, tag)
            assert found is not None and found.tag == tag
