"""Tests for the bimodal fallback predictor."""

from repro.branch.bimodal import BimodalPredictor


class TestBimodal:
    def test_learns_taken(self):
        predictor = BimodalPredictor(1024)
        for _ in range(4):
            predictor.train(0x1000, True)
        assert predictor.predict(0x1000) is True

    def test_learns_not_taken(self):
        predictor = BimodalPredictor(1024)
        for _ in range(4):
            predictor.train(0x1000, False)
        assert predictor.predict(0x1000) is False

    def test_hysteresis(self):
        """A single contrary outcome does not flip a saturated counter."""
        predictor = BimodalPredictor(1024)
        for _ in range(4):
            predictor.train(0x1000, True)
        predictor.train(0x1000, False)
        assert predictor.predict(0x1000) is True

    def test_storage(self):
        assert BimodalPredictor(8192).storage_bits() == 16384

    def test_entries(self):
        assert BimodalPredictor(512).entries == 512
