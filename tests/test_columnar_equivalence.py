"""Randomized bit-exact equivalence: columnar loop vs object oracle.

The columnar fast path in :meth:`repro.pipeline.core.CoreModel.run`
re-implements the per-instruction pass over packed arrays.  These tests
are the contract that keeps it honest: for randomized workloads, seeds,
and predictor assemblies, the full :class:`SimResult` -- every counter,
the cycle count, and the nested ``extra`` diagnostics -- must be
*identical* between ``columnar=True`` and ``columnar=False``.
"""

from dataclasses import asdict

import pytest

from repro.composite.composite import CompositePredictor
from repro.composite.config import CompositeConfig
from repro.eves.eves import eves_8kb
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import CoreModel, simulate
from repro.pipeline.vp import EvesAdapter, SingleComponentAdapter
from repro.predictors import make_component
from repro.workloads.generator import clear_trace_caches, generate_trace


@pytest.fixture(autouse=True)
def _no_store(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE_CACHE_DIR", raising=False)
    clear_trace_caches()
    yield
    clear_trace_caches()


def run_both(trace, make_predictor, config=None, seed=0):
    """One trace through both loops with independently built state."""
    obj = CoreModel(
        config=config, predictor=make_predictor(), seed=seed
    ).run(trace, columnar=False)
    col = CoreModel(
        config=config, predictor=make_predictor(), seed=seed
    ).run(trace, columnar=True)
    return asdict(obj), asdict(col)


def assert_bit_identical(trace, make_predictor, config=None, seed=0):
    obj, col = run_both(trace, make_predictor, config, seed)
    diff = {k: (obj[k], col[k]) for k in obj if obj[k] != col[k]}
    assert not diff, f"columnar/object divergence on {trace.name}: {diff}"


WORKLOADS = ("astar", "mcf", "coremark", "listing1")


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("seed", (0, 3))
    def test_baseline(self, workload, seed):
        trace = generate_trace(workload, 3000, seed)
        assert_bit_identical(trace, lambda: None, seed=seed)

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("seed", (0, 7))
    def test_composite(self, workload, seed):
        trace = generate_trace(workload, 3000, seed)
        assert_bit_identical(
            trace,
            lambda: CompositePredictor(CompositeConfig().homogeneous(128)),
            seed=seed,
        )

    @pytest.mark.parametrize("workload", ("astar", "listing1"))
    def test_eves(self, workload):
        trace = generate_trace(workload, 3000, 1)
        assert_bit_identical(trace, lambda: EvesAdapter(eves_8kb()), seed=1)

    @pytest.mark.parametrize("component", ("lvp", "sap", "cvp", "cap"))
    def test_single_components(self, component):
        trace = generate_trace("mcf", 2500, 2)
        assert_bit_identical(
            trace,
            lambda: SingleComponentAdapter(make_component(component, 128)),
            seed=2,
        )

    def test_no_memory_dependence_config(self):
        trace = generate_trace("astar", 2500, 4)
        config = CoreConfig(memory_dependence="oracle")
        assert_bit_identical(
            trace,
            lambda: CompositePredictor(CompositeConfig().homogeneous(64)),
            config=config,
            seed=4,
        )

    def test_cold_l3_config(self):
        trace = generate_trace("mcf", 2500, 6)
        config = CoreConfig(warm_l3=False)
        assert_bit_identical(trace, lambda: None, config=config, seed=6)


class TestDispatch:
    def test_packed_trace_defaults_to_columnar(self):
        trace = generate_trace("astar", 1500, 0)
        assert trace.columns is not None
        default = simulate(trace, seed=0)
        forced = simulate(trace, seed=0, columnar=True)
        assert asdict(default) == asdict(forced)

    def test_unpacked_trace_uses_object_path(self):
        from repro.isa.trace import Trace

        packed = generate_trace("astar", 1500, 0)
        unpacked = Trace(
            name=packed.name,
            instructions=list(packed.instructions),
            seed=packed.seed,
            metadata=dict(packed.metadata),
            initial_memory=packed.initial_memory,
        )
        assert unpacked.columns is None
        assert asdict(simulate(unpacked)) == asdict(simulate(packed))

    def test_forcing_columnar_without_columns_raises(self):
        from repro.isa.trace import Trace

        packed = generate_trace("astar", 1500, 0)
        unpacked = Trace(
            name=packed.name,
            instructions=list(packed.instructions),
            seed=packed.seed,
            initial_memory=packed.initial_memory,
        )
        with pytest.raises(ValueError, match="no packed columns"):
            simulate(unpacked, columnar=True)

    def test_interrupt_hook_fires_on_columnar_path(self):
        from repro.pipeline.core import SimulationInterrupted

        trace = generate_trace("astar", 1500, 0)
        calls = []
        with pytest.raises(SimulationInterrupted):
            simulate(
                trace,
                interrupt=lambda done: calls.append(done) or len(calls) > 1,
                interrupt_interval=256,
                columnar=True,
            )
        assert calls == [256, 512]
