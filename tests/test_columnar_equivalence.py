"""Randomized bit-exact equivalence: columnar loop vs object oracle.

The columnar fast path in :meth:`repro.pipeline.core.CoreModel.run`
re-implements the per-instruction pass over packed arrays.  These tests
are the contract that keeps it honest: for randomized workloads, seeds,
and predictor assemblies, the full :class:`SimResult` -- every counter,
the cycle count, and the nested ``extra`` diagnostics -- must be
*identical* between ``columnar=True`` and ``columnar=False``.

The same contract covers the *functional* path: the vectorized batch
backend (:mod:`repro.harness.functional_vec`) must produce a
:class:`FunctionalResult` identical to the object interpreter's, with
identical final table state, across workloads x seeds x predictor
specs -- plus the edge traces (no loads, nothing predictable, one
instruction) that stress the accuracy-of-nothing reporting.
"""

import dataclasses
from dataclasses import asdict

import pytest

from repro.composite.composite import CompositePredictor
from repro.composite.config import CompositeConfig
from repro.eves.eves import eves_8kb
from repro.harness.functional import run_functional
from repro.harness.functional_vec import vector_unsupported_reason
from repro.isa.instruction import Instruction, OpClass
from repro.isa.trace import Trace
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import CoreModel, simulate
from repro.pipeline.vp import EvesAdapter, SingleComponentAdapter
from repro.predictors import make_component
from repro.workloads.generator import clear_trace_caches, generate_trace


@pytest.fixture(autouse=True)
def _no_store(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE_CACHE_DIR", raising=False)
    clear_trace_caches()
    yield
    clear_trace_caches()


def run_both(trace, make_predictor, config=None, seed=0):
    """One trace through both loops with independently built state."""
    obj = CoreModel(
        config=config, predictor=make_predictor(), seed=seed
    ).run(trace, columnar=False)
    col = CoreModel(
        config=config, predictor=make_predictor(), seed=seed
    ).run(trace, columnar=True)
    return asdict(obj), asdict(col)


def assert_bit_identical(trace, make_predictor, config=None, seed=0):
    obj, col = run_both(trace, make_predictor, config, seed)
    diff = {k: (obj[k], col[k]) for k in obj if obj[k] != col[k]}
    assert not diff, f"columnar/object divergence on {trace.name}: {diff}"


WORKLOADS = ("astar", "mcf", "coremark", "listing1")


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("seed", (0, 3))
    def test_baseline(self, workload, seed):
        trace = generate_trace(workload, 3000, seed)
        assert_bit_identical(trace, lambda: None, seed=seed)

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("seed", (0, 7))
    def test_composite(self, workload, seed):
        trace = generate_trace(workload, 3000, seed)
        assert_bit_identical(
            trace,
            lambda: CompositePredictor(CompositeConfig().homogeneous(128)),
            seed=seed,
        )

    @pytest.mark.parametrize("workload", ("astar", "listing1"))
    def test_eves(self, workload):
        trace = generate_trace(workload, 3000, 1)
        assert_bit_identical(trace, lambda: EvesAdapter(eves_8kb()), seed=1)

    @pytest.mark.parametrize("component", ("lvp", "sap", "cvp", "cap"))
    def test_single_components(self, component):
        trace = generate_trace("mcf", 2500, 2)
        assert_bit_identical(
            trace,
            lambda: SingleComponentAdapter(make_component(component, 128)),
            seed=2,
        )

    def test_no_memory_dependence_config(self):
        trace = generate_trace("astar", 2500, 4)
        config = CoreConfig(memory_dependence="oracle")
        assert_bit_identical(
            trace,
            lambda: CompositePredictor(CompositeConfig().homogeneous(64)),
            config=config,
            seed=4,
        )

    def test_cold_l3_config(self):
        trace = generate_trace("mcf", 2500, 6)
        config = CoreConfig(warm_l3=False)
        assert_bit_identical(trace, lambda: None, config=config, seed=6)


class TestDispatch:
    def test_packed_trace_defaults_to_columnar(self):
        trace = generate_trace("astar", 1500, 0)
        assert trace.columns is not None
        default = simulate(trace, seed=0)
        forced = simulate(trace, seed=0, columnar=True)
        assert asdict(default) == asdict(forced)

    def test_unpacked_trace_uses_object_path(self):
        from repro.isa.trace import Trace

        packed = generate_trace("astar", 1500, 0)
        unpacked = Trace(
            name=packed.name,
            instructions=list(packed.instructions),
            seed=packed.seed,
            metadata=dict(packed.metadata),
            initial_memory=packed.initial_memory,
        )
        assert unpacked.columns is None
        assert asdict(simulate(unpacked)) == asdict(simulate(packed))

    def test_forcing_columnar_without_columns_raises(self):
        from repro.isa.trace import Trace

        packed = generate_trace("astar", 1500, 0)
        unpacked = Trace(
            name=packed.name,
            instructions=list(packed.instructions),
            seed=packed.seed,
            initial_memory=packed.initial_memory,
        )
        with pytest.raises(ValueError, match="no packed columns"):
            simulate(unpacked, columnar=True)

    def test_interrupt_hook_fires_on_columnar_path(self):
        from repro.pipeline.core import SimulationInterrupted

        trace = generate_trace("astar", 1500, 0)
        calls = []
        with pytest.raises(SimulationInterrupted):
            simulate(
                trace,
                interrupt=lambda done: calls.append(done) or len(calls) > 1,
                interrupt_interval=256,
                columnar=True,
            )
        assert calls == [256, 512]


# ----------------------------------------------------------------------
# Functional path: vectorized batch backend vs the object oracle
# ----------------------------------------------------------------------

def functional_both(trace, make_predictor, tick_epochs=True):
    """Run both functional backends with independently built predictors."""
    obj_predictor = make_predictor()
    vec_predictor = make_predictor()
    obj = run_functional(
        trace, obj_predictor, tick_epochs, backend="object"
    )
    vec = run_functional(
        trace, vec_predictor, tick_epochs, backend="vector"
    )
    return (asdict(obj), obj_predictor), (asdict(vec), vec_predictor)


def _table_state(predictor):
    """Every entry of every table, as plain tuples."""
    if isinstance(predictor, SingleComponentAdapter):
        components = [predictor.component]
    else:
        components = list(predictor.components.values())
    return [
        [dataclasses.astuple(entry) for entry in table.entries()]
        for component in components
        for table in component._tables()
    ]


def assert_functional_identical(trace, make_predictor, tick_epochs=True):
    (obj, obj_p), (vec, vec_p) = functional_both(
        trace, make_predictor, tick_epochs
    )
    diff = {k: (obj[k], vec[k]) for k in obj if obj[k] != vec[k]}
    assert not diff, f"vector/object divergence on {trace.name}: {diff}"
    assert _table_state(obj_p) == _table_state(vec_p)
    assert (getattr(obj_p, "_instructions_in_epoch", None)
            == getattr(vec_p, "_instructions_in_epoch", None))


def _composite(**overrides):
    config = CompositeConfig(**overrides).homogeneous(128)
    return lambda: CompositePredictor(config)


class TestFunctionalVecEquivalence:
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("seed", (0, 5))
    def test_composite_default(self, workload, seed):
        trace = generate_trace(workload, 3000, seed)
        assert_functional_identical(trace, _composite())

    @pytest.mark.parametrize(
        "monitor", ("none", "m-am", "pc-am", "pc-am-infinite")
    )
    def test_accuracy_monitors(self, monitor):
        trace = generate_trace("mcf", 3000, 1)
        assert_functional_identical(
            trace, _composite(accuracy_monitor=monitor)
        )

    def test_plain_composite(self):
        trace = generate_trace("astar", 3000, 2)
        config = CompositeConfig().plain().homogeneous(128)
        assert_functional_identical(
            trace, lambda: CompositePredictor(config)
        )

    def test_smart_training_off(self):
        trace = generate_trace("coremark", 3000, 3)
        assert_functional_identical(trace, _composite(smart_training=False))

    def test_fusion_with_tiny_epochs(self):
        # Epochs short enough that fusion observes, fires, and can
        # revert inside a 3000-instruction trace; the vec run must
        # fuse identically, not merely end with equal counters.
        trace = generate_trace("listing1", 3000, 4)
        make = _composite(epoch_instructions=97)
        (obj, obj_p), (vec, vec_p) = functional_both(trace, make)
        assert obj == vec
        assert _table_state(obj_p) == _table_state(vec_p)
        assert (obj_p.fusion.state.fusions_performed
                == vec_p.fusion.state.fusions_performed)
        assert vec_p.fusion.state.fusions_performed >= 1

    def test_heterogeneous_sizes(self):
        trace = generate_trace("mcf", 3000, 6)
        config = CompositeConfig(
            lvp_entries=64, sap_entries=256, cvp_entries=512,
            cap_entries=128, table_fusion=False,
        )
        assert_functional_identical(
            trace, lambda: CompositePredictor(config)
        )

    def test_confidence_delta(self):
        trace = generate_trace("astar", 3000, 7)
        assert_functional_identical(trace, _composite(confidence_delta=1))

    @pytest.mark.parametrize("component", ("lvp", "sap", "cvp", "cap"))
    def test_single_components(self, component):
        trace = generate_trace("coremark", 2500, 8)
        assert_functional_identical(
            trace,
            lambda: SingleComponentAdapter(make_component(component, 128)),
        )

    def test_tick_epochs_false(self):
        trace = generate_trace("mcf", 3000, 9)
        assert_functional_identical(trace, _composite(), tick_epochs=False)


def _packed(name, instructions):
    trace = Trace(name=name, instructions=instructions)
    trace.pack()
    return trace


def _alu(i):
    return Instruction(pc=4 * (i + 1), op=OpClass.INT_ALU)


class TestFunctionalVecEdgeTraces:
    """Degenerate traces, which also pin the accuracy-of-nothing fix:
    zero predictions must report accuracy 0.0, never a vacuous 1.0."""

    def _assert_nothing_predicted(self, trace):
        (obj, _), (vec, _) = functional_both(trace, _composite())
        assert obj == vec
        for result in (obj, vec):
            assert result["predicted_loads"] == 0
        functional = run_functional(
            trace,
            CompositePredictor(CompositeConfig().homogeneous(128)),
            backend="vector",
        )
        assert functional.accuracy == 0.0
        assert functional.coverage == 0.0

    def test_zero_loads(self):
        instructions = [_alu(i) for i in range(8)] + [
            Instruction(pc=64, op=OpClass.BRANCH_COND, taken=True),
            Instruction(pc=68, op=OpClass.BRANCH_DIRECT),
        ]
        trace = _packed("no-loads", instructions)
        self._assert_nothing_predicted(trace)

    def test_all_unpredictable_loads(self):
        instructions = [
            Instruction(
                pc=4 * (i + 1), op=OpClass.LOAD, dest=1, addr=8 * i,
                size=8, value=i, no_predict=True,
            )
            for i in range(16)
        ]
        trace = _packed("unpredictable", instructions)
        self._assert_nothing_predicted(trace)

    def test_single_instruction(self):
        self._assert_nothing_predicted(_packed("one-alu", [_alu(0)]))

    def test_single_cold_load(self):
        # One predictable load: probed, trained, but never confident --
        # predicted_loads stays 0 and accuracy must read 0.0.
        trace = _packed("one-load", [
            Instruction(
                pc=4, op=OpClass.LOAD, dest=2, addr=16, size=8, value=7
            ),
        ])
        (obj, _), (vec, _) = functional_both(trace, _composite())
        assert obj == vec
        assert obj["loads"] == 1
        self._assert_nothing_predicted(trace)


class TestFunctionalBackendDispatch:
    def test_unknown_backend_rejected(self):
        trace = generate_trace("astar", 1500, 0)
        with pytest.raises(ValueError, match="unknown functional backend"):
            run_functional(
                trace,
                CompositePredictor(CompositeConfig().homogeneous(64)),
                backend="simd",
            )

    def test_vector_rejects_unsupported_predictor(self):
        trace = generate_trace("astar", 1500, 0)
        adapter = EvesAdapter(eves_8kb())
        assert vector_unsupported_reason(trace, adapter) is not None
        with pytest.raises(ValueError, match="unsupported predictor type"):
            run_functional(trace, adapter, backend="vector")

    def test_auto_falls_back_for_unsupported_predictor(self):
        trace = generate_trace("astar", 1500, 0)
        auto = run_functional(trace, EvesAdapter(eves_8kb()))
        obj = run_functional(
            trace, EvesAdapter(eves_8kb()), backend="object"
        )
        assert asdict(auto) == asdict(obj)

    def test_vector_rejects_unpacked_trace(self):
        packed = generate_trace("astar", 1500, 0)
        unpacked = Trace(
            name=packed.name,
            instructions=list(packed.instructions),
            seed=packed.seed,
            initial_memory=packed.initial_memory,
        )
        assert unpacked.columns is None
        with pytest.raises(ValueError, match="no packed columns"):
            run_functional(
                unpacked,
                CompositePredictor(CompositeConfig().homogeneous(64)),
                backend="vector",
            )

    def test_supported_composite_reports_no_reason(self):
        trace = generate_trace("astar", 1500, 0)
        predictor = CompositePredictor(CompositeConfig().homogeneous(64))
        assert vector_unsupported_reason(trace, predictor) is None
