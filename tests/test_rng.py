"""Tests for deterministic RNG streams."""

import pytest

from repro.common.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(42, "x")
        b = DeterministicRng(42, "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_diverge(self):
        a = DeterministicRng(42, "x")
        b = DeterministicRng(42, "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_derive_is_deterministic(self):
        a = DeterministicRng(1).derive("child")
        b = DeterministicRng(1).derive("child")
        assert a.random() == b.random()

    def test_derive_independent_of_parent_consumption(self):
        parent_a = DeterministicRng(1)
        parent_b = DeterministicRng(1)
        parent_a.random()  # consume from one parent only
        assert parent_a.derive("c").random() == parent_b.derive("c").random()


class TestCoin:
    def test_degenerate_probabilities(self):
        rng = DeterministicRng(0)
        assert rng.coin(1.0) is True
        assert rng.coin(0.0) is False
        assert rng.coin(1.5) is True
        assert rng.coin(-0.5) is False

    def test_bias_statistics(self):
        rng = DeterministicRng(3)
        hits = sum(rng.coin(0.25) for _ in range(4000))
        assert 800 < hits < 1200


class TestHelpers:
    def test_randint_range(self):
        rng = DeterministicRng(5)
        values = {rng.randint(3, 7) for _ in range(200)}
        assert values == {3, 4, 5, 6}

    def test_choice(self):
        rng = DeterministicRng(6)
        assert rng.choice([9]) == 9
        assert rng.choice(["a", "b"]) in ("a", "b")

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).choice([])

    def test_shuffled_preserves_elements(self):
        rng = DeterministicRng(7)
        items = list(range(20))
        shuffled = rng.shuffled(items)
        assert sorted(shuffled) == items
        assert items == list(range(20))  # input untouched

    def test_geometric_positive(self):
        rng = DeterministicRng(8)
        assert all(rng.geometric(0.5) >= 1 for _ in range(100))
