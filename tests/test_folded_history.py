"""Bit-exactness of the incrementally maintained folded registers.

The tentpole invariant of the folding rework: every folded register in
:class:`repro.branch.history.HistorySet` must equal
``fold_bits(history & mask(length), width)`` -- the pre-change
per-probe computation, kept in :mod:`repro.common.bits` as the
reference oracle -- after *any* sequence of pushes, snapshots, and
restores.  If these tests pass, rewiring the predictor hashes onto the
registers cannot change a single table index or tag.
"""

from __future__ import annotations

import random

import pytest

from repro.branch.history import (
    LOAD_PATH_BITS,
    MAX_DIRECTION_BITS,
    PATH_BITS,
    HistorySet,
)
from repro.branch.ittage import IttagePredictor
from repro.branch.tage import TagePredictor
from repro.common.bits import fold_bits, mask
from repro.common.hashing import csr_push, csr_push2

#: A deliberately awkward mix: widths larger than, equal to, dividing,
#: and coprime to the history lengths, including width 1.
FOLD_SPECS = [
    ("direction", 5, 3),
    ("direction", 13, 13),
    ("direction", 32, 7),
    ("direction", 64, 10),
    ("direction", 130, 11),
    ("direction", MAX_DIRECTION_BITS, 9),
    ("direction", 6, 8),  # width > length
    ("direction", 17, 1),  # degenerate width
    ("path", PATH_BITS, 9),
    ("path", PATH_BITS, 10),
    ("path", PATH_BITS, 5),
    ("load_path", LOAD_PATH_BITS, 8),
    ("load_path", LOAD_PATH_BITS, 3),
]


def _register_all(h: HistorySet) -> dict[tuple, int]:
    slots = {}
    for kind, length, width in FOLD_SPECS:
        if kind == "direction":
            slots[(kind, length, width)] = h.register_direction_fold(
                length, width
            )
        elif kind == "path":
            slots[(kind, length, width)] = h.register_path_fold(width)
        else:
            slots[(kind, length, width)] = h.register_load_path_fold(width)
    return slots


def _assert_oracle(h: HistorySet, slots: dict[tuple, int]) -> None:
    """Every registered fold equals the fold_bits reference."""
    for (kind, length, width), slot in slots.items():
        source = {
            "direction": h.direction,
            "path": h.path,
            "load_path": h.load_path,
        }[kind]
        expected = fold_bits(source & mask(length), width)
        assert h.fold_cell(slot)[0] == expected, (kind, length, width)


def _random_events(h: HistorySet, rng: random.Random, count: int) -> None:
    for _ in range(count):
        pc = rng.getrandbits(30) & ~0b11
        roll = rng.random()
        if roll < 0.45:
            h.push_branch(pc, rng.random() < 0.5)
        elif roll < 0.6:
            h.push_unconditional(pc)
        else:
            h.push_memory(pc)


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_folds_match_oracle_under_random_events(self, seed):
        rng = random.Random(seed)
        h = HistorySet()
        slots = _register_all(h)
        for _ in range(40):
            _random_events(h, rng, rng.randrange(1, 25))
            _assert_oracle(h, slots)

    def test_registration_on_warm_history_seeds_exactly(self):
        """Folds registered mid-run start bit-exact (seeded, not zero)."""
        rng = random.Random(99)
        h = HistorySet()
        _random_events(h, rng, 200)
        slots = _register_all(h)
        _assert_oracle(h, slots)
        _random_events(h, rng, 50)
        _assert_oracle(h, slots)

    def test_registration_is_idempotent(self):
        h = HistorySet()
        a = h.register_direction_fold(32, 7)
        b = h.register_direction_fold(32, 7)
        assert a == b
        assert h.register_path_fold(9) == h.register_path_fold(9)

    def test_csr_reference_steps_match_oracle(self):
        """The readable csr_push/csr_push2 forms equal fold_bits too."""
        rng = random.Random(7)
        for _ in range(200):
            length = rng.randrange(2, 80)
            width = rng.randrange(1, 16)
            history = rng.getrandbits(length)
            folded = fold_bits(history, width)
            bit = rng.getrandbits(1)
            out = (history >> (length - 1)) & 1
            new_history = ((history << 1) | bit) & mask(length)
            assert csr_push(folded, length, width, bit, out) == fold_bits(
                new_history, width
            )
            two = rng.getrandbits(2)
            out2 = (history >> (length - 2)) & 0b11
            shifted = ((history << 2) | two) & mask(length)
            assert csr_push2(folded, length, width, two, out2) == fold_bits(
                shifted, width
            )


class TestPredictorHashEquivalence:
    """The rewired fast-path hashes equal the fold_bits-based reference."""

    @pytest.mark.parametrize("seed", range(4))
    def test_tage_indices_and_tags_bit_identical(self, seed):
        rng = random.Random(1000 + seed)
        bound = TagePredictor()
        reference = TagePredictor()  # unbound: always takes the slow path
        h = HistorySet()
        bound.bind_history(h)
        for _ in range(150):
            _random_events(h, rng, rng.randrange(1, 8))
            pc = rng.getrandbits(30) & ~0b11
            snap = h.snapshot()
            fast = bound._hashes(pc, h)
            slow = reference._hashes(pc, snap)
            assert fast == slow

    @pytest.mark.parametrize("seed", range(4))
    def test_ittage_indices_and_tags_bit_identical(self, seed):
        rng = random.Random(2000 + seed)
        bound = IttagePredictor()
        reference = IttagePredictor()
        h = HistorySet()
        bound.bind_history(h)
        for _ in range(150):
            _random_events(h, rng, rng.randrange(1, 8))
            pc = rng.getrandbits(30) & ~0b11
            assert bound._hashes(pc, h) == reference._hashes(
                pc, h.snapshot()
            )

    @pytest.mark.parametrize("component_name", ["cvp", "cap"])
    def test_value_predictor_hashes_bit_identical(self, component_name):
        from repro.predictors import make_component

        rng = random.Random(31337)
        bound = make_component(component_name, 256)
        reference = make_component(component_name, 256)
        h = HistorySet()
        bound.bind_history(h)
        for _ in range(200):
            _random_events(h, rng, rng.randrange(1, 8))
            pc = rng.getrandbits(30) & ~0b11
            folded = h.folded_values()
            if component_name == "cap":
                fast = bound._hash(pc, h.load_path, folded)
                slow = (
                    reference._index(pc, h.load_path),
                    reference._tag(pc, h.load_path),
                )
                assert fast == slow
            else:
                for table in range(3):
                    fast = bound._hash(
                        pc, table, h.direction, h.path, folded
                    )
                    slow = (
                        reference._index(pc, table, h.direction, h.path),
                        reference._tag(pc, table, h.direction),
                    )
                    assert fast == slow

    def test_evtage_hashes_bit_identical(self):
        from repro.eves.evtage import EVtagePredictor

        rng = random.Random(4242)
        bound = EVtagePredictor()
        reference = EVtagePredictor()
        h = HistorySet()
        bound.bind_history(h)
        for _ in range(150):
            _random_events(h, rng, rng.randrange(1, 8))
            pc = rng.getrandbits(30) & ~0b11
            folded = h.folded_values()
            for table in range(bound.num_tables):
                fast = bound._hash(pc, table, h.direction, h.path, folded)
                slow = (
                    reference._index(pc, table, h.direction, h.path),
                    reference._tag(pc, table, h.direction),
                )
                assert fast == slow


class TestSnapshotRestore:
    """Satellite: flush restores must repair every fold width."""

    def test_restore_repairs_every_fold_width(self):
        rng = random.Random(5)
        h = HistorySet()
        slots = _register_all(h)
        _random_events(h, rng, 60)
        snap = h.snapshot()
        expected = {slot: h.fold_cell(slot)[0] for slot in slots.values()}
        _random_events(h, rng, 40)  # wrong-path progress
        h.restore(snap)
        for slot, value in expected.items():
            assert h.fold_cell(slot)[0] == value
        _assert_oracle(h, slots)

    def test_nested_flush_restore(self):
        """A flush *inside* wrong-path recovery (restore to an older
        snapshot after already restoring a younger one) must still
        leave every fold register bit-exact."""
        rng = random.Random(6)
        h = HistorySet()
        slots = _register_all(h)
        _random_events(h, rng, 30)
        outer = h.snapshot()
        _random_events(h, rng, 20)
        inner = h.snapshot()
        _random_events(h, rng, 20)
        h.restore(inner)
        _assert_oracle(h, slots)
        _random_events(h, rng, 10)
        h.restore(outer)  # nested: second, older restore
        assert h.direction == outer.direction
        _assert_oracle(h, slots)
        # ... and the registers keep tracking after recovery.
        _random_events(h, rng, 25)
        _assert_oracle(h, slots)

    def test_restore_reseeds_folds_registered_after_snapshot(self):
        """Folds the snapshot does not cover fall back to the oracle."""
        rng = random.Random(8)
        h = HistorySet()
        early = h.register_direction_fold(20, 6)
        _random_events(h, rng, 30)
        snap = h.snapshot()
        _random_events(h, rng, 15)
        late = h.register_direction_fold(48, 5)  # not in snap.folded
        h.restore(snap)
        assert h.fold_cell(early)[0] == fold_bits(
            h.direction & mask(20), 6
        )
        assert h.fold_cell(late)[0] == fold_bits(
            h.direction & mask(48), 5
        )

    def test_snapshot_carries_folded_values(self):
        h = HistorySet()
        h.register_direction_fold(10, 4)
        h.push_branch(0x1000, True)
        snap = h.snapshot()
        assert snap.folded == h.folded_values()
        h.push_branch(0x1004, False)
        assert snap.folded != h.folded_values()
