"""Tests for the trace container and serialization."""

import pytest

from repro.isa.instruction import Instruction, OpClass
from repro.isa.trace import Trace


def _sample_trace() -> Trace:
    instructions = [
        Instruction(pc=0x1000, op=OpClass.INT_ALU, dest=1, srcs=(0,)),
        Instruction(pc=0x1004, op=OpClass.LOAD, dest=2, srcs=(1,),
                    addr=0x8000, size=8, value=99),
        Instruction(pc=0x1008, op=OpClass.STORE, srcs=(2,),
                    addr=0x8008, size=4, value=7),
        Instruction(pc=0x100C, op=OpClass.BRANCH_COND, srcs=(2,),
                    taken=True, target=0x1000),
        Instruction(pc=0x1010, op=OpClass.LOAD, dest=3, addr=0x8000,
                    size=8, value=99, no_predict=True),
    ]
    return Trace("sample", instructions, seed=7, metadata={"k": 1})


class TestStats:
    def test_counts(self):
        stats = _sample_trace().stats()
        assert stats.instructions == 5
        assert stats.loads == 2
        assert stats.stores == 1
        assert stats.branches == 1
        assert stats.taken_branches == 1
        assert stats.predictable_loads == 1  # one load is no_predict
        assert stats.unique_load_pcs == 2

    def test_fractions(self):
        stats = _sample_trace().stats()
        assert stats.load_fraction == pytest.approx(0.4)
        assert stats.branch_fraction == pytest.approx(0.2)

    def test_empty_trace(self):
        stats = Trace("empty", []).stats()
        assert stats.instructions == 0
        assert stats.load_fraction == 0.0


class TestContainer:
    def test_iteration_and_indexing(self):
        trace = _sample_trace()
        assert len(trace) == 5
        assert trace[1].is_load
        assert sum(1 for _ in trace.loads()) == 2

    def test_from_instructions(self):
        trace = Trace.from_instructions(
            "gen", iter(_sample_trace().instructions)
        )
        assert len(trace) == 5


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        trace = _sample_trace()
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == trace.name
        assert loaded.seed == trace.seed
        assert loaded.metadata == trace.metadata
        assert loaded.instructions == trace.instructions

    def test_truncated_file_detected(self, tmp_path):
        trace = _sample_trace()
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="truncated"):
            Trace.load(path)

    def test_initial_memory_roundtrip(self, tmp_path):
        from repro.memory.image import MemoryImage

        trace = _sample_trace()
        trace.initial_memory = MemoryImage()
        trace.initial_memory.write(0x8000, 8, 99)
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.initial_memory.read(0x8000, 8) == 99

    def test_memory_can_be_omitted(self, tmp_path):
        from repro.memory.image import MemoryImage

        trace = _sample_trace()
        trace.initial_memory = MemoryImage()
        path = tmp_path / "trace.jsonl"
        trace.save(path, include_memory=False)
        assert Trace.load(path).initial_memory is None

    def test_generated_trace_roundtrip_simulates_identically(self, tmp_path):
        from repro.pipeline import simulate
        from repro.workloads import generate_trace

        trace = generate_trace("coremark", 3000)
        path = tmp_path / "coremark.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert simulate(loaded).cycles == simulate(trace).cycles
