"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.common.rng import DeterministicRng
from repro.predictors.types import LoadOutcome, LoadProbe


@pytest.fixture(autouse=True)
def _no_ambient_results_db(monkeypatch):
    """Keep the results database out of tests that didn't opt in.

    A developer's ``REPRO_RESULTS_DB_DIR`` would otherwise turn sweep
    cells into ``cached`` outcomes under tests asserting ``ok``, and
    leak per-test usage into the process-wide totals.
    """
    from repro.harness import resilient, resultsdb

    monkeypatch.delenv(resultsdb.ENV_VAR, raising=False)
    resultsdb.reset_active_db()
    resilient.reset_db_usage_totals()
    yield
    resultsdb.reset_active_db()
    resilient.reset_db_usage_totals()


@pytest.fixture
def rng() -> DeterministicRng:
    return DeterministicRng(1234, "tests")


def make_outcome(
    pc: int = 0x1000,
    addr: int = 0x8000,
    size: int = 8,
    value: int = 42,
    direction: int = 0,
    path: int = 0,
    load_path: int = 0,
) -> LoadOutcome:
    return LoadOutcome(
        pc=pc, addr=addr, size=size, value=value,
        direction_history=direction, path_history=path,
        load_path_history=load_path,
    )


def make_probe(
    pc: int = 0x1000,
    direction: int = 0,
    path: int = 0,
    load_path: int = 0,
    inflight: int = 0,
) -> LoadProbe:
    return LoadProbe(
        pc=pc, direction_history=direction, path_history=path,
        load_path_history=load_path, inflight_same_pc=inflight,
    )


def train_constant(predictor, pc: int, value: int, times: int,
                   addr: int = 0x9000, **histories) -> None:
    """Feed ``times`` identical outcomes (same pc/addr/value)."""
    for _ in range(times):
        predictor.train(make_outcome(pc=pc, addr=addr, value=value, **histories))


def train_strided(predictor, pc: int, base: int, stride: int, times: int,
                  value_fn=None, **histories) -> None:
    """Feed ``times`` outcomes with a strided address pattern."""
    for i in range(times):
        value = value_fn(i) if value_fn else 7
        predictor.train(make_outcome(
            pc=pc, addr=base + i * stride, value=value, **histories
        ))
