"""Bounded exactly-once replay cache: watermarks, persistence, policy.

The :class:`~repro.serve.session.SeqTracker` replay cache is bounded
twice over -- an entry-count cap and a byte watermark on serialized
response payloads -- because a long-lived durable session would
otherwise accumulate one cached response per mutating request forever
(and a handful of fat ``apply`` responses could dwarf any count cap).
These tests pin the eviction policy (oldest first, newest never), the
structured ``seq-too-old`` failure past the window, and the checkpoint
round-trip that keeps the *exact* window (bounds and entries) across
spill/recover.
"""

import pytest

from repro.serve.server import PredictionServer, ServerConfig
from repro.serve.session import (
    SEQ_CACHE_BYTES,
    SEQ_CACHE_SIZE,
    SeqTracker,
    SessionError,
)

SPEC = {"kind": "component", "name": "lvp", "entries": 64}


def _entry(i: int, pad: int = 0) -> tuple:
    return ("ok", {"value": i, "pad": "x" * pad})


class TestCountBound:
    def test_cache_never_exceeds_cache_size(self):
        tracker = SeqTracker(cache_size=4)
        for seq in range(1, 41):
            tracker.record(seq, _entry(seq))
        assert tracker.cached_entries == 4
        assert tracker.applied_seq == 40

    def test_recent_replays_hit_old_replays_age_out(self):
        tracker = SeqTracker(cache_size=4)
        for seq in range(1, 11):
            tracker.record(seq, _entry(seq))
        assert tracker.check(10) == _entry(10)
        assert tracker.check(7) == _entry(7)
        with pytest.raises(SessionError) as excinfo:
            tracker.check(2)
        assert excinfo.value.code == "seq-too-old"

    def test_defaults_are_the_module_constants(self):
        tracker = SeqTracker()
        assert tracker.cache_size == SEQ_CACHE_SIZE
        assert tracker.cache_bytes == SEQ_CACHE_BYTES


class TestByteWatermark:
    def test_fat_entries_evict_before_the_count_cap(self):
        # Each entry serializes to ~120 bytes; the watermark allows ~4
        # of them while the count cap would allow 100.
        tracker = SeqTracker(cache_size=100, cache_bytes=500)
        for seq in range(1, 21):
            tracker.record(seq, _entry(seq, pad=80))
        assert tracker.cached_entries < 10
        assert tracker.cached_bytes <= 500
        assert tracker.check(20) == _entry(20, pad=80)

    def test_newest_entry_survives_even_over_budget(self):
        # The most recent response is the one a retry needs *right
        # now*; it is never evicted, even when it alone busts the
        # watermark.
        tracker = SeqTracker(cache_size=8, cache_bytes=64)
        tracker.record(1, _entry(1, pad=4096))
        assert tracker.cached_entries == 1
        assert tracker.check(1) == _entry(1, pad=4096)

    def test_unserializable_entries_get_a_nominal_charge(self):
        weird = ("ok", {"blob": object()})
        assert SeqTracker.entry_bytes(weird) == 64
        tracker = SeqTracker(cache_size=4, cache_bytes=1 << 20)
        tracker.record(1, weird)
        assert tracker.cached_bytes == 64


class TestHeaderRoundTrip:
    def test_policy_and_entries_survive_export_import(self):
        tracker = SeqTracker(cache_size=5, cache_bytes=4096)
        for seq in range(1, 9):
            tracker.record(seq, _entry(seq))
        fresh = SeqTracker()  # default bounds; header must override
        fresh.load_entries(
            tracker.applied_seq,
            tracker.export_entries(),
            tracker.export_policy(),
        )
        assert fresh.cache_size == 5
        assert fresh.cache_bytes == 4096
        assert fresh.applied_seq == 8
        # Entries come back as tuples with identical replay semantics.
        assert fresh.check(8) == ("ok", {"value": 8, "pad": ""})
        with pytest.raises(SessionError):
            fresh.check(1)

    def test_over_budget_header_is_trimmed_on_load(self):
        # A header written under looser bounds must not reinstate an
        # over-budget cache on a process running tighter ones.
        loose = SeqTracker(cache_size=50)
        for seq in range(1, 31):
            loose.record(seq, _entry(seq))
        tight = SeqTracker(cache_size=3)
        tight.load_entries(loose.applied_seq, loose.export_entries())
        assert tight.cached_entries == 3
        assert tight.check(30) is not None


class TestPersistenceThroughTheServer:
    def test_replay_window_survives_release_and_adopt(self, tmp_path):
        """The regression this file exists for: the bounds and the
        surviving entries ride checkpoint headers, so a migrated or
        recovered session keeps the exact replay window it had."""
        server = PredictionServer(ServerConfig(
            data_dir=str(tmp_path / "state"),
            fsync_interval=0.0,
            seq_cache_size=3,
            seq_cache_bytes=1 << 16,
        ))
        opened = server.execute("open", {
            "session": "w", "spec": SPEC, "durable": True,
        })
        assert opened["applied_seq"] == 1
        responses = {}
        for seq in range(2, 9):
            responses[seq] = server.execute("apply", {
                "session": "w", "seq": seq,
                "events": [{"k": "l", "pc": 64, "addr": 256, "size": 4,
                            "value": seq, "pred": True}],
            })
        # Quiesce to disk (checkpoint + freeze), then recover.
        released = server.execute("release", {"session": "w"})
        assert released["released"] == "w"
        adopted = server.execute("adopt", {"session": "w"})
        assert adopted["applied_seq"] == 8
        tracker = server.sessions.get("w").tracker
        assert tracker.cache_size == 3
        assert tracker.cached_entries <= 3
        # Recent seq replays the cached response; an aged-out one fails
        # structurally instead of re-executing.
        assert server.execute("apply", {
            "session": "w", "seq": 8, "events": [],
        }) == responses[8]
        with pytest.raises(SessionError) as excinfo:
            server.execute("apply", {"session": "w", "seq": 2,
                                     "events": []})
        assert excinfo.value.code == "seq-too-old"

    def test_frozen_session_rejects_requests_until_adopted(self, tmp_path):
        server = PredictionServer(ServerConfig(
            data_dir=str(tmp_path / "state"), fsync_interval=0.0,
        ))
        server.execute("open", {
            "session": "f", "spec": SPEC, "durable": True,
        })
        server.execute("release", {"session": "f"})
        with pytest.raises(SessionError) as excinfo:
            server.execute("apply", {"session": "f", "seq": 2,
                                     "events": []})
        assert excinfo.value.code == "session-migrating"
        server.execute("adopt", {"session": "f"})
        result = server.execute("apply", {
            "session": "f", "seq": 2, "events": [],
        })
        assert result == {"results": []}
