"""Tests for the successive-halving design-space search.

Exercises the schedule math, the grid/design-point declarations in
``harness.presets``, and end-to-end searches on a tiny scale: the
search must evaluate strictly fewer cells than the full grid, rank
deterministically, reuse the results database across repeat searches,
and degrade to exit-3 semantics (a ``failures`` key) instead of
raising when individual cells fail.
"""

import dataclasses

import pytest

from repro.composite.config import CompositeConfig
from repro.harness import resilient, resultsdb
from repro.harness.explore import METRICS, MODES, default_rungs, run_explore
from repro.harness.presets import (
    EXPLORE_GRIDS,
    AM_VARIANTS,
    DesignPoint,
    ExperimentScale,
    ExploreGrid,
)
from repro.harness.resilient import ExecutionPolicy, RetryPolicy, use_policy
from repro.harness.resultsdb import cell_fingerprint
from repro.harness.runner import SPEEDUP_CELL_FN

TINY = ExperimentScale(
    name="tiny", workloads=("coremark", "mcf"), trace_length=2000,
    extra_seeds=(1,),
)


class TestDesignPoint:
    def test_label_roundtrips_configuration(self):
        point = DesignPoint((32, 32, 128, 64))
        assert point.label == "32-32-128-64/nofuse/pc-am"
        assert point.total_entries == 256
        assert point.group == "t256"
        thr = DesignPoint((64,) * 4, accuracy_monitor="m-am", am_threshold=2.0)
        assert thr.label.endswith("/nofuse/m-am@2")

    def test_fusion_requires_homogeneous_tables(self):
        DesignPoint((64,) * 4, table_fusion=True)  # fine
        with pytest.raises(ValueError, match="fusion"):
            DesignPoint((32, 32, 128, 64), table_fusion=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            DesignPoint((64, 64, 64))  # wrong arity
        with pytest.raises(ValueError):
            DesignPoint((64, 64, 64, -1))
        with pytest.raises(ValueError):
            DesignPoint((64,) * 4, accuracy_monitor="bogus")
        with pytest.raises(ValueError):
            DesignPoint((64,) * 4, accuracy_monitor="none",
                        am_threshold=2.0)  # no monitor to tune

    def test_config_carries_scale_epoch_and_seed(self):
        config = DesignPoint((32, 32, 128, 64)).config(TINY)
        assert isinstance(config, CompositeConfig)
        assert config.epoch_instructions == TINY.epoch_instructions
        assert config.seed == TINY.seed
        sizes = (config.lvp_entries, config.sap_entries,
                 config.cvp_entries, config.cap_entries)
        assert sizes == (32, 32, 128, 64)

    def test_explore_cells_share_table6_fingerprints(self):
        # The default point settings must hash identically to the
        # cells ``table6_heterogeneous`` dispatches, so a prior table6
        # campaign pre-populates an explore search (and vice versa).
        from repro.harness.experiments import table6_heterogeneous  # noqa: F401

        point = DesignPoint((32, 32, 128, 64))
        spec = {"kind": "composite", "config": point.config(TINY)}
        direct = {
            "kind": "composite",
            "config": dataclasses.replace(
                CompositeConfig(
                    epoch_instructions=TINY.epoch_instructions,
                    seed=TINY.seed,
                ).with_entries(32, 32, 128, 64),
                table_fusion=False,
            ),
        }
        wrap = lambda s: {  # noqa: E731 - mirror runner cell spec shape
            "workload": "coremark", "length": TINY.trace_length,
            "seed": 0, "predictor": s,
        }
        assert cell_fingerprint(SPEEDUP_CELL_FN, wrap(spec)) == \
            cell_fingerprint(SPEEDUP_CELL_FN, wrap(direct))


class TestGrids:
    def test_registry_contents(self):
        assert set(EXPLORE_GRIDS) == {"table6", "optimizations", "smoke"}
        for grid in EXPLORE_GRIDS.values():
            labels = [p.label for p in grid.points]
            assert len(labels) == len(set(labels))
            assert grid.description

    def test_table6_grid_covers_budgets(self):
        grid = EXPLORE_GRIDS["table6"]
        groups = grid.groups()
        assert set(groups) == {"t256", "t512", "t1024"}
        assert all(len(points) == 5 for points in groups.values())

    def test_optimizations_grid_spans_am_variants(self):
        grid = EXPLORE_GRIDS["optimizations"]
        monitors = {p.accuracy_monitor for p in grid.points}
        assert monitors == {"pc-am", "m-am", "none"}
        assert monitors <= set(AM_VARIANTS)
        assert any(p.table_fusion for p in grid.points)
        assert any(p.am_threshold is not None for p in grid.points)

    def test_duplicate_labels_rejected(self):
        point = DesignPoint((64,) * 4)
        with pytest.raises(ValueError, match="duplicate"):
            ExploreGrid("dup", "two of the same", (point, point))


class TestSchedule:
    @pytest.mark.parametrize("points,runs,eta,expected", [
        (1, 16, 2.0, 1),
        (8, 1, 2.0, 1),
        (5, 8, 2.0, 3),    # bounded by points: log2(5) -> 2 + 1
        (16, 4, 2.0, 3),   # bounded by runs: log2(4) -> 2 + 1
        (9, 81, 3.0, 3),   # log3(9) -> 2 + 1
    ])
    def test_default_rungs(self, points, runs, eta, expected):
        assert default_rungs(points, runs, eta) == expected

    def test_validation_errors(self):
        grid = EXPLORE_GRIDS["smoke"]
        with pytest.raises(ValueError, match="valid modes"):
            run_explore(grid, TINY, mode="quantum")
        with pytest.raises(ValueError, match="valid metrics"):
            run_explore(grid, TINY, metric="ipc", mode="functional")
        with pytest.raises(ValueError, match="eta"):
            run_explore(grid, TINY, eta=1.0)
        with pytest.raises(ValueError, match="rungs"):
            run_explore(grid, TINY, rungs=0)

    def test_metric_tables_consistent(self):
        assert set(MODES) == set(METRICS)
        assert "speedup" in METRICS["timing"]
        assert "speedup" not in METRICS["functional"]


def _quiet_policy():
    return use_policy(ExecutionPolicy(
        retry=RetryPolicy(max_retries=0, backoff=0.001)
    ))


class TestRunExplore:
    def test_functional_search_end_to_end(self):
        grid = EXPLORE_GRIDS["smoke"]
        with _quiet_policy():
            report = run_explore(
                grid, TINY, metric="coverage", mode="functional", rungs=2,
            )
        assert report["grid"] == "smoke"
        assert report["rungs"] == 2
        assert report["evaluated_cells"] < report["full_grid_cells"]
        assert report["full_grid_cells"] == len(grid.points) * len(TINY.runs())
        assert "failures" not in report

        (group,) = report["groups"]
        ranking = report["groups"][group]["ranking"]
        assert len(ranking) == len(grid.points)
        assert report["groups"][group]["winner"] == ranking[0]["label"]
        # Finalists scored on every run; the eliminated on rung 0's.
        finalists = [r for r in ranking if "eliminated_at_rung" not in r]
        assert finalists and all(
            r["scored_runs"] == len(TINY.runs()) for r in finalists
        )
        eliminated = [r for r in ranking if "eliminated_at_rung" in r]
        assert eliminated and all(r["eliminated_at_rung"] == 0
                                  for r in eliminated)
        assert all("coverage" in r and "storage_kib" in r for r in ranking)
        # Schedule bookkeeping adds up to the reported total.
        assert sum(r["evaluated_cells"] for r in report["schedule"]) == \
            report["evaluated_cells"]

    def test_search_is_deterministic(self):
        grid = EXPLORE_GRIDS["smoke"]
        with _quiet_policy():
            a = run_explore(grid, TINY, metric="coverage",
                            mode="functional", rungs=2)
            b = run_explore(grid, TINY, metric="coverage",
                            mode="functional", rungs=2)
        assert a == b

    def test_repeat_search_served_from_db(self, tmp_path, monkeypatch):
        monkeypatch.setenv(resultsdb.ENV_VAR, str(tmp_path / "db"))
        resultsdb.reset_active_db()
        grid = EXPLORE_GRIDS["smoke"]
        with _quiet_policy():
            first = run_explore(grid, TINY, metric="coverage",
                                mode="functional", rungs=2)
            again = run_explore(grid, TINY, metric="coverage",
                                mode="functional", rungs=2)
        assert first["results_db"]["computed"] == first["evaluated_cells"]
        assert again["results_db"]["computed"] == 0
        assert again["results_db"]["hit_rate"] == 1.0
        assert again["groups"] == first["groups"]

    def test_single_rung_ranks_full_grid_on_full_runs(self):
        grid = EXPLORE_GRIDS["smoke"]
        with _quiet_policy():
            report = run_explore(grid, TINY, metric="coverage",
                                 mode="functional", rungs=1)
        assert report["evaluated_cells"] == report["full_grid_cells"]
        (group,) = report["groups"]
        ranking = report["groups"][group]["ranking"]
        assert all("eliminated_at_rung" not in r for r in ranking)

    def test_cell_failures_reported_not_raised(self, monkeypatch):
        grid = EXPLORE_GRIDS["smoke"]
        label = grid.points[0].label
        monkeypatch.setenv(
            resilient.FAULT_PLAN_ENV,
            f"explore/smoke/r0/{label}/*:fail:99",
        )
        with _quiet_policy():
            report = run_explore(grid, TINY, metric="coverage",
                                 mode="functional", rungs=2)
        assert report["failures"]["failed_cells"] > 0
        (group,) = report["groups"]
        ranking = report["groups"][group]["ranking"]
        # The all-failed point scores -inf and is eliminated first.
        assert ranking[-1]["label"] == label
        assert ranking[-1]["coverage"] == float("-inf")
        assert ranking[-1]["eliminated_at_rung"] == 0

    def test_timing_mode_smoke(self):
        # One tiny timing search: the ranked rows carry speedup/ipc
        # metrics from the cycle-accurate model.
        grid = ExploreGrid(
            "pair", "two budget-256 points",
            (DesignPoint((64,) * 4), DesignPoint((32, 32, 128, 64))),
        )
        scale = ExperimentScale("tiny", ("coremark",), 2000)
        with _quiet_policy():
            report = run_explore(grid, scale, metric="speedup",
                                 mode="timing", rungs=1)
        ranking = report["groups"]["t256"]["ranking"]
        assert len(ranking) == 2
        assert all(isinstance(r["speedup"], float) for r in ranking)
