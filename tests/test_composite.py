"""Tests for the composite predictor (selection, stats, training policy)."""

import pytest
from conftest import make_outcome, make_probe

from repro.composite.composite import (
    SELECTION_ORDER,
    TRAINING_ORDER,
    CompositePredictor,
)
from repro.composite.config import CompositeConfig


def _config(**overrides):
    base = CompositeConfig(epoch_instructions=1000).homogeneous(256).plain()
    from dataclasses import replace

    return replace(base, **overrides) if overrides else base


def _correctness(decision, value=None, addr=None):
    """All-confident-correct verdicts for simple scenarios."""
    return {name: True for name in decision.confident}


class TestOrders:
    def test_selection_prefers_value_then_context(self):
        assert SELECTION_ORDER == ("cvp", "lvp", "cap", "sap")

    def test_training_prefers_value_then_agnostic(self):
        assert TRAINING_ORDER == ("lvp", "cvp", "sap", "cap")


class TestConstruction:
    def test_zero_entry_component_omitted(self):
        composite = CompositePredictor(_config().with_entries(0, 256, 256, 256))
        assert "lvp" not in composite.components
        assert set(composite.components) == {"sap", "cvp", "cap"}

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            CompositePredictor(_config().with_entries(0, 0, 0, 0))

    def test_fusion_requires_homogeneous(self):
        config = _config(table_fusion=True).with_entries(64, 256, 256, 256)
        with pytest.raises(ValueError, match="homogeneous"):
            CompositePredictor(config)

    def test_storage_sums_components(self):
        composite = CompositePredictor(_config())
        expected = sum(c.storage_bits() for c in composite.components.values())
        assert composite.storage_bits() == expected  # null AM adds 0


class TestSelection:
    def _warm(self, composite, times=300):
        """Constant value at constant address: all four become confident."""
        probe = make_probe(pc=0x1000, direction=0b101, load_path=0b11)
        outcome = make_outcome(pc=0x1000, addr=0x8000, value=7,
                               direction=0b101, load_path=0b11)
        for _ in range(times):
            decision = composite.predict(probe)
            composite.validate_and_train(
                decision, outcome, _correctness(decision)
            )
        return probe

    def test_chooses_highest_priority_confident(self):
        composite = CompositePredictor(_config())
        probe = self._warm(composite)
        decision = composite.predict(probe)
        confident_ranked = [
            n for n in SELECTION_ORDER if n in decision.confident
        ]
        assert decision.chosen.component == confident_ranked[0]

    def test_overlap_statistics(self):
        composite = CompositePredictor(_config())
        self._warm(composite)
        stats = composite.stats
        assert stats.loads > 0
        assert sum(stats.confident_histogram) == stats.loads
        assert stats.predicted_loads <= stats.loads

    def test_validation_requires_all_verdicts(self):
        composite = CompositePredictor(_config())
        probe = self._warm(composite)
        decision = composite.predict(probe)
        assert decision.confident
        with pytest.raises(ValueError, match="missing"):
            composite.validate_and_train(
                decision, make_outcome(pc=0x1000), {}
            )


class TestTrainingPolicies:
    def test_train_all_trains_every_component(self):
        composite = CompositePredictor(_config(smart_training=False))
        decision = composite.predict(make_probe(pc=0x1000))
        composite.validate_and_train(decision, make_outcome(pc=0x1000), {})
        assert composite.stats.train_operations == len(composite.components)

    def test_smart_training_trains_all_when_no_prediction(self):
        composite = CompositePredictor(_config(smart_training=True))
        decision = composite.predict(make_probe(pc=0x1000))
        assert not decision.confident
        composite.validate_and_train(decision, make_outcome(pc=0x1000), {})
        assert composite.stats.train_operations == len(composite.components)

    def test_smart_training_reduces_training_ops(self):
        smart = CompositePredictor(_config(smart_training=True))
        dumb = CompositePredictor(_config(smart_training=False))
        probe = make_probe(pc=0x1000, direction=0b101, load_path=0b11)
        outcome = make_outcome(pc=0x1000, addr=0x8000, value=7,
                               direction=0b101, load_path=0b11)
        for composite in (smart, dumb):
            for _ in range(400):
                decision = composite.predict(probe)
                composite.validate_and_train(
                    decision, outcome, _correctness(decision)
                )
        assert smart.stats.avg_predictors_trained < \
            dumb.stats.avg_predictors_trained

    def test_smart_training_invalidates_unchosen_correct_sap(self):
        """Once a cheaper correct predictor exists, a correct-but-
        untrained SAP entry is dropped (its stride would break anyway).

        Warm LVP and SAP directly (smart training would otherwise stop
        the slower one from ever becoming confident -- the policy's
        whole point), then check one smart-training validation.
        """
        composite = CompositePredictor(_config(smart_training=True))
        probe = make_probe(pc=0x1000)
        outcome = make_outcome(pc=0x1000, addr=0x8000, value=7)
        for _ in range(300):
            composite.components["lvp"].train(outcome)
            composite.components["sap"].train(outcome)
        decision = composite.predict(probe)
        assert {"lvp", "sap"} <= set(decision.confident)
        composite.validate_and_train(decision, outcome, _correctness(decision))
        assert composite.components["sap"].predict(probe) is None
        assert composite.components["lvp"].predict(probe) is not None

    def test_smart_training_only_trains_cheapest_when_multiple_correct(self):
        composite = CompositePredictor(_config(smart_training=True))
        probe = make_probe(pc=0x1000)
        outcome = make_outcome(pc=0x1000, addr=0x8000, value=7)
        for _ in range(300):
            composite.components["lvp"].train(outcome)
            composite.components["sap"].train(outcome)
        decision = composite.predict(probe)
        before = composite.stats.train_operations
        composite.validate_and_train(decision, outcome, _correctness(decision))
        assert composite.stats.train_operations - before == 1  # LVP only

    def test_wrong_components_are_penalized(self):
        composite = CompositePredictor(_config(smart_training=True))
        probe = make_probe(pc=0x1000, load_path=0b11)
        outcome = make_outcome(pc=0x1000, addr=0x8000, value=7,
                               load_path=0b11)
        # Warm SAP/CAP on the address.
        for _ in range(60):
            decision = composite.predict(probe)
            composite.validate_and_train(
                decision, outcome, _correctness(decision)
            )
        decision = composite.predict(probe)
        assert decision.confident
        verdicts = {name: False for name in decision.confident}
        composite.validate_and_train(decision, outcome, verdicts)
        after = composite.predict(probe)
        # Everyone who was wrong lost confidence.
        assert not set(verdicts) & set(after.confident)


class TestEpochs:
    def test_tick_fires_epoch_boundaries(self):
        composite = CompositePredictor(_config(accuracy_monitor="m-am"))
        fired = []
        original = composite.monitor.end_epoch
        composite.monitor.end_epoch = lambda: fired.append(1) or original()
        composite.tick_instructions(2500)
        assert len(fired) == 2
