"""Tests for the sparse functional memory image."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.image import MemoryImage


class TestBasicReadWrite:
    def test_default_zero(self):
        assert MemoryImage().read(0x1234, 8) == 0

    def test_aligned_word(self):
        img = MemoryImage()
        img.write(0x100, 8, 0xDEADBEEFCAFEF00D)
        assert img.read(0x100, 8) == 0xDEADBEEFCAFEF00D

    def test_sub_word_little_endian(self):
        img = MemoryImage()
        img.write(0x100, 8, 0x1122334455667788)
        assert img.read(0x100, 1) == 0x88
        assert img.read(0x100, 2) == 0x7788
        assert img.read(0x102, 2) == 0x5566

    def test_unaligned_crossing_words(self):
        img = MemoryImage()
        img.write(0x105, 8, 0xAABBCCDDEEFF0011)
        assert img.read(0x105, 8) == 0xAABBCCDDEEFF0011

    def test_write_masks_to_size(self):
        img = MemoryImage()
        img.write(0x0, 2, 0x12345)
        assert img.read(0x0, 2) == 0x2345

    def test_partial_overwrite(self):
        img = MemoryImage()
        img.write(0x0, 8, 0xFFFFFFFFFFFFFFFF)
        img.write(0x2, 2, 0)
        assert img.read(0x0, 8) == 0xFFFFFFFF0000FFFF

    def test_copy_is_independent(self):
        img = MemoryImage()
        img.write(0x0, 8, 1)
        clone = img.copy()
        clone.write(0x0, 8, 2)
        assert img.read(0x0, 8) == 1
        assert clone.read(0x0, 8) == 2

    def test_len_counts_words(self):
        img = MemoryImage()
        img.write(0x0, 8, 1)
        img.write(0x8, 8, 2)
        assert len(img) == 2


class TestAgainstByteReference:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=63),      # addr
        st.sampled_from([1, 2, 4, 8]),               # size
        st.integers(min_value=0, max_value=2**64 - 1),
    ), max_size=40))
    def test_matches_bytearray(self, operations):
        img = MemoryImage()
        reference = bytearray(80)
        for addr, size, value in operations:
            img.write(addr, size, value)
            reference[addr:addr + size] = (value & ((1 << (8 * size)) - 1)
                                           ).to_bytes(size, "little")
        for addr, size, _ in operations:
            expected = int.from_bytes(reference[addr:addr + size], "little")
            assert img.read(addr, size) == expected
