"""Tests for core configuration and simulation result metrics."""

import pytest

from repro.isa.instruction import OpClass
from repro.pipeline.config import DEFAULT_LATENCIES, CoreConfig
from repro.pipeline.result import SimResult


class TestCoreConfig:
    def test_paper_table_iii_defaults(self):
        cfg = CoreConfig()
        assert cfg.fetch_width == 4
        assert cfg.issue_width == 8
        assert cfg.ls_lanes + cfg.generic_lanes == cfg.issue_width
        assert (cfg.rob_entries, cfg.iq_entries,
                cfg.ldq_entries, cfg.stq_entries) == (224, 97, 72, 56)
        assert cfg.fetch_to_execute == 13

    def test_frontend_depth_consistent(self):
        cfg = CoreConfig()
        # fetch + depth (dispatch) + 1 (issue-eligible) + 1 (execute)
        assert cfg.frontend_depth + 2 == cfg.fetch_to_execute

    def test_latencies_cover_non_load_ops(self):
        for op in OpClass:
            if op is not OpClass.LOAD:
                assert op in DEFAULT_LATENCIES

    def test_division_slower_than_alu(self):
        assert DEFAULT_LATENCIES[OpClass.INT_DIV] > \
            DEFAULT_LATENCIES[OpClass.INT_ALU]


class TestSimResult:
    def _result(self, **kw):
        base = dict(workload="w", instructions=1000, cycles=500)
        base.update(kw)
        return SimResult(**base)

    def test_ipc(self):
        assert self._result().ipc == 2.0

    def test_coverage_of_predictable(self):
        result = self._result(predictable_loads=100, predicted_loads=40)
        assert result.coverage == 0.4

    def test_coverage_empty(self):
        assert self._result().coverage == 0.0

    def test_accuracy(self):
        result = self._result(predicted_loads=50, correct_predictions=49)
        assert result.accuracy == 0.98

    def test_accuracy_no_predictions_is_one(self):
        assert self._result().accuracy == 1.0

    def test_branch_mpki(self):
        result = self._result(branch_mispredictions=5)
        assert result.branch_mpki == 5.0

    def test_speedup_over(self):
        fast = self._result(cycles=400)
        slow = self._result(cycles=500)
        assert fast.speedup_over(slow) == pytest.approx(0.25)
        assert slow.speedup_over(fast) == pytest.approx(-0.2)

    def test_speedup_requires_same_length(self):
        with pytest.raises(ValueError):
            self._result().speedup_over(self._result(instructions=9))
