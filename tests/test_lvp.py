"""Tests for the last value predictor (LVP)."""

from conftest import make_outcome, make_probe, train_constant

from repro.common.rng import DeterministicRng
from repro.predictors.lvp import LvpPredictor
from repro.predictors.types import PredictionKind


def _lvp(entries=256, seed=0):
    return LvpPredictor(entries, DeterministicRng(seed))


class TestWarmup:
    def test_no_prediction_cold(self):
        assert _lvp().predict(make_probe()) is None

    def test_predicts_after_effective_confidence(self):
        """High confidence takes ~64 observations (Table IV)."""
        lvp = _lvp()
        train_constant(lvp, pc=0x1000, value=7, times=200)
        prediction = lvp.predict(make_probe(pc=0x1000))
        assert prediction is not None
        assert prediction.kind is PredictionKind.VALUE
        assert prediction.value == 7

    def test_does_not_predict_too_early(self):
        lvp = _lvp()
        train_constant(lvp, pc=0x1000, value=7, times=5)
        assert lvp.predict(make_probe(pc=0x1000)) is None

    def test_warmup_time_statistics(self):
        """Mean observations-to-confidence across PCs ~ 64."""
        lvp = _lvp(entries=4096, seed=3)
        warmups = []
        for k in range(60):
            pc = 0x10000 + 64 * k
            for i in range(1, 400):
                lvp.train(make_outcome(pc=pc, value=9))
                if lvp.predict(make_probe(pc=pc)) is not None:
                    warmups.append(i)
                    break
        mean = sum(warmups) / len(warmups)
        assert 64 * 0.7 < mean < 64 * 1.3


class TestValueChanges:
    def test_value_change_resets_confidence(self):
        lvp = _lvp()
        train_constant(lvp, pc=0x1000, value=7, times=300)
        lvp.train(make_outcome(pc=0x1000, value=8))
        assert lvp.predict(make_probe(pc=0x1000)) is None

    def test_new_value_learned_after_reset(self):
        lvp = _lvp()
        train_constant(lvp, pc=0x1000, value=7, times=300)
        train_constant(lvp, pc=0x1000, value=8, times=300)
        prediction = lvp.predict(make_probe(pc=0x1000))
        assert prediction is not None and prediction.value == 8

    def test_alternating_values_never_confident(self):
        lvp = _lvp()
        for i in range(300):
            lvp.train(make_outcome(pc=0x1000, value=i % 2))
        assert lvp.predict(make_probe(pc=0x1000)) is None


class TestAliasing:
    def test_conflicting_pcs_evict(self):
        """Two PCs mapping to the same index fight for one entry."""
        lvp = _lvp(entries=1)
        train_constant(lvp, pc=0x1000, value=7, times=300)
        train_constant(lvp, pc=0x2000, value=9, times=300)
        assert lvp.predict(make_probe(pc=0x1000)) is None

    def test_distinct_pcs_coexist_in_big_table(self):
        lvp = _lvp(entries=1024)
        train_constant(lvp, pc=0x1000, value=7, times=300)
        train_constant(lvp, pc=0x2000, value=9, times=300)
        assert lvp.predict(make_probe(pc=0x1000)).value == 7
        assert lvp.predict(make_probe(pc=0x2000)).value == 9


class TestAccounting:
    def test_storage_bits(self):
        assert _lvp(entries=1024).storage_bits() == 1024 * 81

    def test_context_flags(self):
        lvp = _lvp()
        assert lvp.kind is PredictionKind.VALUE
        assert not lvp.context_aware

    def test_flush_clears(self):
        lvp = _lvp()
        train_constant(lvp, pc=0x1000, value=7, times=300)
        lvp.flush()
        assert lvp.predict(make_probe(pc=0x1000)) is None

    def test_value_masked_to_64_bits(self):
        lvp = _lvp()
        train_constant(lvp, pc=0x1000, value=(1 << 70) | 5, times=300)
        assert lvp.predict(make_probe(pc=0x1000)).value == 5
