"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments_and_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out
        assert "table6" in out
        assert "coremark" in out


class TestRun:
    def test_run_static_table(self, capsys):
        assert main(["run", "table1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["rows"]) == 4

    def test_run_writes_json(self, tmp_path, capsys):
        out_file = tmp_path / "result.json"
        assert main(["run", "table4", "--json", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert len(payload["rows"]) == 4
        capsys.readouterr()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig2", "--scale", "galactic"])


class TestReportCommand:
    def test_report_writes_markdown(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main([
            "report", "--sections", "table1", "table4", "-o", str(out),
        ]) == 0
        text = out.read_text()
        assert "# Reproduction report" in text
        assert "## table4" in text
        capsys.readouterr()


class TestSimulateCommand:
    def _saved_trace(self, tmp_path):
        from repro.workloads import generate_trace

        path = tmp_path / "trace.jsonl"
        generate_trace("coremark", 4000).save(path)
        return path

    def test_baseline_simulation(self, tmp_path, capsys):
        path = self._saved_trace(tmp_path)
        assert main(["simulate", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["instructions"] == 4000
        assert payload["cycles"] > 0
        assert payload["predicted_loads"] == 0

    def test_composite_simulation(self, tmp_path, capsys):
        path = self._saved_trace(tmp_path)
        assert main([
            "simulate", str(path), "--predictor", "composite",
            "--entries", "256",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["predicted_loads"] > 0
        assert 0 <= payload["coverage"] <= 1

    def test_single_component_simulation(self, tmp_path, capsys):
        path = self._saved_trace(tmp_path)
        assert main([
            "simulate", str(path), "--predictor", "sap",
            "--entries", "1024",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["predicted_loads"] > 0

    def test_unknown_predictor_rejected(self, tmp_path, capsys):
        path = self._saved_trace(tmp_path)
        assert main(["simulate", str(path), "--predictor", "bogus"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "unknown predictor" in err


class TestScaleResolution:
    def test_scale_from_env(self, monkeypatch):
        from repro.harness.presets import QUICK, SMOKE, scale_from_env

        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_from_env() is QUICK
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert scale_from_env() is SMOKE
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            scale_from_env()
