"""Tests for the serving layer's session abstraction.

Covers spec resolution from wire-friendly JSON, the standalone
predict/train API, the streaming event vocabulary's validation, memory
semantics for address predictions, and the manager's LRU eviction
under count and byte budgets.
"""

import pytest

from repro.memory.image import MemoryImage
from repro.serve.session import (
    MAX_WORKLOAD_LENGTH,
    PREDICTOR_NAMES,
    PredictorSession,
    SessionError,
    SessionManager,
    resolve_spec,
    spec_from_name,
)


class TestSpecFromName:
    @pytest.mark.parametrize("name", PREDICTOR_NAMES)
    def test_every_listed_name_builds_a_session(self, name):
        session = PredictorSession(spec_from_name(name, 64))
        assert session.predictor is not None

    def test_unknown_name_lists_valid_ones(self):
        with pytest.raises(SessionError) as excinfo:
            spec_from_name("magic")
        assert excinfo.value.code == "bad-spec"
        for name in PREDICTOR_NAMES:
            assert name in str(excinfo.value)


class TestResolveSpec:
    def test_entries_shorthand_builds_homogeneous_composite(self):
        spec = resolve_spec({"kind": "composite", "entries": 128})
        config = spec["config"]
        assert config.lvp_entries == 128
        assert config.sap_entries == 128

    def test_config_dict_fields_applied(self):
        spec = resolve_spec({
            "kind": "composite",
            "config": {"lvp_entries": 32, "epoch_instructions": 5000},
        })
        assert spec["config"].lvp_entries == 32
        assert spec["config"].epoch_instructions == 5000

    def test_unknown_config_field_lists_valid_ones(self):
        with pytest.raises(SessionError) as excinfo:
            resolve_spec({"kind": "composite", "config": {"lvp_size": 1}})
        assert excinfo.value.code == "bad-spec"
        assert "lvp_size" in str(excinfo.value)
        assert "lvp_entries" in str(excinfo.value)

    def test_extra_components_lists_become_tuples(self):
        spec = resolve_spec({
            "kind": "composite",
            "config": {"extra_components": [["lap", 64]]},
        })
        assert spec["config"].extra_components == (("lap", 64),)

    def test_non_composite_specs_pass_through(self):
        spec = {"kind": "component", "name": "lvp", "entries": 64}
        assert resolve_spec(spec) is spec
        assert resolve_spec(None) is None

    def test_bad_entries_rejected(self):
        with pytest.raises(SessionError):
            resolve_spec({"kind": "composite", "entries": "lots"})


class TestPredictTrain:
    def test_train_without_predict_fails(self):
        session = PredictorSession(spec_from_name("lvp", 64))
        with pytest.raises(SessionError, match="pending"):
            session.train(0x100, 8, 1)

    def test_predict_then_train_resolves_oldest_first(self):
        session = PredictorSession(spec_from_name("lvp", 64))
        session.predict(0x40)
        session.predict(0x48)
        assert session.pending == 2
        session.train(0x1000, 8, 7)
        assert session.pending == 1
        assert session.loads == 1

    def test_lvp_learns_a_constant_value(self):
        # LVP's FPC confidence needs ~64 effective consecutive hits.
        session = PredictorSession(spec_from_name("lvp", 64))
        last = None
        for _ in range(200):
            session.predict(0x40)
            last = session.train(0x1000, 8, 99)
        assert last["predicted"]
        assert last["value"] == 99
        assert last["correct"]
        assert session.accuracy > 0.0

    def test_address_prediction_scored_against_session_memory(self):
        session = PredictorSession(spec_from_name("cap", 64))
        # The load at 0x40 always hits address 0x1000; its correctness
        # must be judged by reading the *session's* memory image.
        session.apply_event(
            {"k": "s", "pc": 0x10, "addr": 0x1000, "size": 8, "value": 99}
        )
        last = None
        for _ in range(40):
            session.predict(0x40)
            last = session.train(0x1000, 8, 99)
        assert last["predicted"]
        assert last["kind"] == "address"
        assert last["addr"] == 0x1000
        assert last["correct"]

    def test_bad_train_size_rejected(self):
        session = PredictorSession(spec_from_name("lvp", 64))
        session.predict(0x40)
        with pytest.raises(SessionError, match="size"):
            session.train(0x1000, 3, 7)

    def test_bad_pc_rejected(self):
        session = PredictorSession(spec_from_name("lvp", 64))
        for pc in (-1, "pc", True, None):
            with pytest.raises(SessionError, match="pc"):
                session.predict(pc)


class TestApplyEvent:
    def _session(self, name="composite"):
        return PredictorSession(spec_from_name(name, 64))

    def test_store_updates_memory_for_address_predictions(self):
        session = self._session()
        session.apply_event(
            {"k": "s", "pc": 0x10, "addr": 0x2000, "size": 8, "value": 5}
        )
        assert session.memory.read(0x2000, 8) == 5
        assert session.instructions == 1

    def test_tick_advances_clock_without_history_changes(self):
        session = self._session()
        direction = session.histories.direction
        session.apply_event({"k": "t", "n": 500})
        assert session.instructions == 500
        assert session.histories.direction == direction

    def test_load_event_counts_and_records(self):
        session = self._session()
        record = session.apply_event({
            "k": "l", "pc": 0x40, "addr": 0x2000, "size": 8,
            "value": 1, "pred": True,
        })
        assert record is not None and "predicted" in record
        assert session.loads == 1

    def test_unpredictable_load_still_pushes_history(self):
        session = self._session()
        load_path = session.histories.load_path
        record = session.apply_event({
            "k": "l", "pc": 0x40, "addr": 0x2000, "size": 8,
            "value": 1, "pred": False,
        })
        assert record is None
        assert session.loads == 0
        assert session.histories.load_path != load_path

    @pytest.mark.parametrize("event,fragment", [
        ("not-a-dict", "must be a dict"),
        ({"k": "x"}, "unknown event kind"),
        ({"k": "b"}, "'pc'"),
        ({"k": "b", "pc": True}, "'pc'"),
        ({"k": "s", "pc": 1, "addr": 2, "size": 3, "value": 0}, "size"),
        ({"k": "s", "pc": 1, "addr": 2, "size": 8, "value": "x"}, "value"),
        ({"k": "l", "pc": 1, "addr": 2, "size": 8, "value": True}, "value"),
        ({"k": "l", "pc": 1, "addr": -2, "size": 8, "value": 0}, "addr"),
        ({"k": "t", "n": -1}, "'n'"),
    ])
    def test_malformed_events_raise_session_errors(self, event, fragment):
        session = self._session("lvp")
        with pytest.raises(SessionError, match=fragment):
            session.apply_event(event)

    def test_snapshot_shape(self):
        session = PredictorSession(
            spec_from_name("composite", 64), session_id="s1"
        )
        snap = session.snapshot()
        assert snap["session"] == "s1"
        assert snap["estimated_bytes"] > 0
        assert 0.0 <= snap["accuracy"] <= 1.0

    def test_accuracy_without_predictions_is_zero(self):
        # A session that never predicted has demonstrated nothing; a
        # vacuous 1.0 would rank idle sessions above working ones.
        session = PredictorSession(spec_from_name("lvp", 64))
        assert session.accuracy == 0.0
        assert session.snapshot()["accuracy"] == 0.0


class TestApplyBatch:
    """The apply fast path must be indistinguishable from per-event
    :meth:`PredictorSession.apply_event` calls."""

    def _events(self, length=2000):
        from repro.serve.loadgen import trace_to_events
        from repro.workloads.generator import generate_trace

        return trace_to_events(generate_trace("coremark", length))

    def _replay(self, spec, events, batched, chunk=256):
        from repro.serve.session import apply_events

        session = PredictorSession(spec)
        results = []
        for start in range(0, len(events), chunk):
            piece = events[start:start + chunk]
            if batched:
                results.extend(apply_events(session, piece)["results"])
            else:
                results.extend(
                    session.apply_event(event) for event in piece
                )
        return session, results

    @pytest.mark.parametrize("spec", [
        {"kind": "composite", "entries": 64},
        # Tiny epochs: the batch path defers per-event ticks, so epoch
        # boundaries (monitor/fusion) must still land identically.
        {"kind": "composite", "entries": 64,
         "config": {"epoch_instructions": 97}},
        {"kind": "component", "name": "sap", "entries": 64},
        None,
    ])
    def test_batch_matches_per_event_replay(self, spec):
        events = self._events()
        batched, batched_results = self._replay(spec, events, True)
        sequential, sequential_results = self._replay(spec, events, False)
        assert batched_results == sequential_results
        assert batched.snapshot() == sequential.snapshot()
        assert (batched.histories.folded_values()
                == sequential.histories.folded_values())

    def test_malformed_event_mid_batch_keeps_prefix_applied(self):
        from repro.serve.session import apply_events

        session = PredictorSession(spec_from_name("lvp", 64))
        with pytest.raises(SessionError, match="event 2: .*'n'"):
            apply_events(session, [
                {"k": "b", "pc": 4, "taken": True},
                {"k": "t", "n": 10},
                {"k": "t", "n": True},
                {"k": "b", "pc": 8},
            ])
        # The branch and the first tick stayed applied; the offender
        # was counted as an event but contributed no instructions.
        assert session.events == 3
        assert session.instructions == 11

    def test_dict_subclass_events_still_accepted(self):
        from repro.serve.session import apply_events

        class EventDict(dict):
            pass

        session = PredictorSession(None)
        out = apply_events(session, [EventDict({"k": "t", "n": 3})])
        assert out == {"results": [None]}
        assert session.instructions == 3


class TestSessionManager:
    def test_open_get_close_lifecycle(self):
        manager = SessionManager()
        manager.open("a", spec_from_name("lvp", 64))
        assert "a" in manager and len(manager) == 1
        assert manager.get("a").session_id == "a"
        snap = manager.close("a")
        assert snap["session"] == "a"
        assert "a" not in manager

    def test_duplicate_open_rejected(self):
        manager = SessionManager()
        manager.open("a", None)
        with pytest.raises(SessionError) as excinfo:
            manager.open("a", None)
        assert excinfo.value.code == "session-exists"

    @pytest.mark.parametrize("bad_id", ["", 7, None, ["x"], {"x": 1}])
    def test_non_string_ids_rejected_everywhere(self, bad_id):
        manager = SessionManager()
        with pytest.raises(SessionError):
            manager.open(bad_id, None)
        with pytest.raises(SessionError) as excinfo:
            manager.get(bad_id)
        assert excinfo.value.code == "unknown-session"
        with pytest.raises(SessionError):
            manager.close(bad_id)

    def test_lru_eviction_over_session_count(self):
        manager = SessionManager(max_sessions=2)
        manager.open("a", None)
        manager.open("b", None)
        manager.get("a")  # b is now the least recently used
        manager.open("c", None)
        assert manager.evictions == 1
        assert "b" not in manager
        assert "a" in manager and "c" in manager

    def test_byte_budget_evicts_idlest_but_never_active(self):
        manager = SessionManager(max_sessions=10, max_total_bytes=1)
        manager.open("a", spec_from_name("lvp", 64))
        manager.open("b", spec_from_name("lvp", 64))
        # Budget of one byte: everything evictable goes, but the
        # session being opened survives.
        assert "b" in manager
        assert "a" not in manager
        assert manager.evictions == 1

    def test_unknown_workload_open_lists_valid_names(self):
        manager = SessionManager()
        with pytest.raises(SessionError) as excinfo:
            manager.open("a", None, workload={"name": "mystery"})
        assert excinfo.value.code == "unknown-workload"
        assert "gcc2k" in str(excinfo.value)

    def test_workload_length_bounds_enforced(self):
        manager = SessionManager()
        for length in (1, MAX_WORKLOAD_LENGTH + 1, "many", True):
            with pytest.raises(SessionError) as excinfo:
                manager.open(
                    "a", None,
                    workload={"name": "coremark", "length": length},
                )
            assert excinfo.value.code == "bad-spec"

    def test_open_with_workload_copies_initial_memory(self):
        from repro.workloads.generator import generate_trace

        manager = SessionManager()
        session = manager.open(
            "a", None, workload={"name": "coremark", "length": 500},
        )
        image = generate_trace("coremark", 500).initial_memory
        assert isinstance(session.memory, MemoryImage)
        assert session.memory.to_word_map() == image.to_word_map()
        # A copy, not the shared trace image.
        session.memory.write(0x10, 8, 123)
        assert image.to_word_map() != session.memory.to_word_map()

    def test_snapshot_aggregates_counters(self):
        manager = SessionManager()
        session = manager.open("a", spec_from_name("lvp", 64))
        for _ in range(3):
            session.predict(0x40)
            session.train(0x1000, 8, 9)
        snap = manager.snapshot()
        assert snap["active"] == 1
        assert snap["opened"] == 1
        assert snap["loads"] == 3
        assert snap["total_bytes"] > 0
