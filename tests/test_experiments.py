"""Smoke/shape tests for every experiment entry point.

Each experiment runs at a tiny scale here; the benchmark harness runs
them at QUICK/FULL scale.  These tests assert structure plus the
paper's qualitative claims that are robust even at tiny scale.
"""

import pytest

from repro.harness import experiments as exp
from repro.harness.presets import ExperimentScale

TINY = ExperimentScale(
    name="tiny", workloads=("coremark", "mcf"), trace_length=6000
)


class TestStaticTables:
    def test_table1(self):
        rows = exp.table1_taxonomy()["rows"]
        assert len(rows) == 4
        assert {r["predictor"] for r in rows} == {"LVP", "SAP", "CVP", "CAP"}

    def test_table2(self):
        result = exp.table2_workloads()
        assert result["total"] == 85
        assert sum(len(v) for v in result["families"].values()) == 85

    def test_table3(self):
        result = exp.table3_core_config()
        assert result["rob/iq/ldq/stq"] == (224, 97, 72, 56)
        assert result["fetch_to_execute"] == 13

    def test_table4(self):
        rows = exp.table4_parameters()["rows"]
        assert [r["effective_confidence"] for r in rows] == [64, 9, 16, 4]
        # 1K-entry storage close to the paper's 8-10KB figure.
        for row in rows:
            assert 8 <= row["storage_kib_at_1k"] <= 10.2


class TestTable5:
    def test_listing1_shape(self):
        result = exp.table5_listing1(outer_m=24, inner_n=16)
        table = result["first_predicted_inner_iteration"]
        # SAP predicts within the very first outer iteration, after
        # roughly its 9-observation warm-up.
        assert table["sap"][0] is not None and 8 <= table["sap"][0] <= 13
        # SAP retrains every outer iteration (never predicts from i=0).
        assert all(v is None or v > 0 for v in table["sap"])
        # LVP needs ~64 instances (4 outer iterations of 16) but then
        # predicts from the first inner iteration.
        assert table["lvp"][0] is None
        late_lvp = [v for v in table["lvp"][6:] if v is not None]
        assert late_lvp and min(late_lvp) == 0
        # CAP establishes per-iteration contexts after a few outer laps.
        assert table["cap"][0] is None
        assert any(v is not None for v in table["cap"][4:])


class TestFigure2:
    def test_breakdown_fractions(self):
        result = exp.fig2_load_breakdown(TINY)
        average = result["average"]
        assert abs(sum(average.values()) - 1.0) < 1e-9
        # All three patterns present in the mix.
        assert all(fraction > 0.05 for fraction in average.values())


class TestFigure4:
    def test_overlap_structure(self):
        result = exp.fig4_overlap(TINY, per_component=256)
        assert 0.2 < result["fraction_predicted"] <= 1.0
        assert abs(sum(result["by_count"].values()) - 1.0) < 1e-9
        # Significant overlap: the paper reports 66% multi-covered.
        assert result["multiple_fraction"] > 0.3


class TestFigure7:
    def test_smart_training_reduces_multiplicity(self):
        result = exp.fig7_smart_training(TINY, per_component_sizes=(256,))
        row = result["sizes"][256]
        assert row["smart"]["multiple_prediction_fraction"] < \
            row["train_all"]["multiple_prediction_fraction"]
        assert row["smart"]["avg_predictors_trained"] < \
            row["train_all"]["avg_predictors_trained"]
        # Smart training updates far fewer predictors than train-all's 4
        # (the paper reports ~1; unpredicted loads still train all four,
        # so the average tracks coverage -- at this tiny scale coverage
        # is low, keeping the average higher).
        assert row["smart"]["avg_predictors_trained"] < 2.8


@pytest.mark.slow
class TestTimingExperiments:
    def test_fig3_structure(self):
        result = exp.fig3_component_speedup(TINY, sizes=(256, 1024))
        assert set(result["speedup"]) == {"lvp", "sap", "cvp", "cap"}
        for curve in result["speedup"].values():
            assert set(curve) == {256, 1024}

    def test_fig5_composite_wins(self):
        """Structural smoke test: at this tiny scale single flushes move
        results by ~+-1pp, so only gross divergence fails here; the
        benchmark suite asserts the paper's claim at averaging scale."""
        result = exp.fig5_composite_vs_component(TINY, totals=(1024,))
        row = result["totals"][1024]
        assert row["composite"] >= row["best_component"] - 0.01
        assert row["composite"] > -0.005  # composite itself never harmful

    def test_fig6_structure(self):
        result = exp.fig6_accuracy_monitor(TINY, per_component=256)
        assert set(result["speedup"]) == {
            "base", "m-am", "pc-am-64", "pc-am-infinite"
        }

    def test_fig10_reports_improvement(self):
        result = exp.fig10_combined(TINY, totals=(1024,))
        row = result["totals"][1024]
        assert "improvement" in row
        assert row["storage_kib"] == pytest.approx(9.56, abs=0.01)

    def test_fig11_composite_beats_eves_coverage(self):
        result = exp.fig11_vs_eves(TINY)
        summary = result["composite96_vs_eves32"]
        # At full scale the paper reports +133%; even at tiny scale the
        # composite's coverage advantage must be clearly positive.
        assert summary["coverage_increase"] > 0.1

    def test_fig12_per_workload_records(self):
        result = exp.fig12_per_workload(TINY)
        assert set(result["per_workload"]) == set(TINY.workloads)
        assert result["composite_wins"] + result["eves_wins"] <= len(
            TINY.workloads
        )
