"""Integration tests for the six-component (footnote-1) composite."""

from repro.composite import CompositeConfig, CompositePredictor
from repro.harness.functional import run_functional
from repro.workloads import generate_trace


def _six(per=128):
    return CompositePredictor(CompositeConfig(
        epoch_instructions=1000, table_fusion=False,
        extra_components=(("lap", per), ("svp", per)),
    ).homogeneous(per))


class TestSixComponentComposite:
    def test_histogram_sized_for_six(self):
        composite = _six()
        assert len(composite.stats.confident_histogram) == 7

    def test_runs_and_stays_accurate(self):
        result = run_functional(generate_trace("coremark", 10_000), _six())
        assert result.accuracy > 0.97
        assert result.coverage > 0.2

    def test_stats_keyed_by_all_six(self):
        composite = _six()
        run_functional(generate_trace("mcf", 8_000), composite)
        assert set(composite.stats.chosen_by) == {
            "lvp", "sap", "cvp", "cap", "lap", "svp",
        }

    def test_extras_add_little_coverage(self):
        """The footnote-1 redundancy at the functional level."""
        trace = generate_trace("linpack", 10_000)
        four = CompositePredictor(CompositeConfig(
            epoch_instructions=1000, table_fusion=False,
        ).homogeneous(128))
        four_result = run_functional(trace, four)
        six_result = run_functional(trace, _six())
        assert six_result.coverage - four_result.coverage < 0.08

    def test_monitor_handles_extras(self):
        from dataclasses import replace

        config = replace(
            CompositeConfig(
                epoch_instructions=1000, table_fusion=False,
                extra_components=(("lap", 128),),
            ).homogeneous(128),
            accuracy_monitor="pc-am",
        )
        composite = CompositePredictor(config)
        result = run_functional(generate_trace("v8", 8_000), composite)
        assert result.accuracy > 0.95  # no KeyErrors, sane behaviour
