"""Tests for the Listing-1 trace generator."""

from repro.isa.instruction import OpClass
from repro.workloads.listing1 import listing1_trace


class TestListing1:
    def test_structure(self):
        trace = listing1_trace(outer_m=3, inner_n=8)
        stores = [i for i in trace if i.op is OpClass.STORE]
        scan_pc = trace.metadata["scan_load_pc"]
        scans = [i for i in trace if i.is_load and i.pc == scan_pc]
        assert len(stores) == 3 * 8     # one memset store per element
        assert len(scans) == 3 * 8      # one scan load per element

    def test_scan_loads_return_zero(self):
        trace = listing1_trace(outer_m=2, inner_n=8)
        scan_pc = trace.metadata["scan_load_pc"]
        assert all(
            i.value == 0 for i in trace if i.is_load and i.pc == scan_pc
        )

    def test_scan_addresses_strided(self):
        trace = listing1_trace(outer_m=1, inner_n=8, elem_size=8)
        scan_pc = trace.metadata["scan_load_pc"]
        addrs = [i.addr for i in trace if i.is_load and i.pc == scan_pc]
        assert [b - a for a, b in zip(addrs, addrs[1:])] == [8] * 7

    def test_metadata(self):
        trace = listing1_trace(outer_m=4, inner_n=16)
        assert trace.metadata["outer_m"] == 4
        assert trace.metadata["inner_n"] == 16
        assert trace.initial_memory is not None

    def test_deterministic(self):
        assert listing1_trace(2, 8).instructions == \
            listing1_trace(2, 8).instructions
