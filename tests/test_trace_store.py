"""Tests for the content-addressed on-disk trace store.

Covers the single-process contract (save/load round trip, key
versioning, corruption -> regenerate, env-var activation, scan/clear)
and the cross-process contract: a ``--workers N`` resilient sweep
populates the store once from the supervisor and every worker *hits*
it instead of regenerating.
"""

import json
import os

import pytest

from repro.harness import runner
from repro.harness.resilient import Cell, ExecutionPolicy, run_cells
from repro.workloads import store as trace_store
from repro.workloads.generator import (
    GENERATOR_VERSION,
    ensure_stored,
    generate_trace,
)
from repro.workloads.store import ENV_VAR, TraceStore

WORKLOAD = "mcf"
LENGTH = 1200
SEED = 5


@pytest.fixture(autouse=True)
def _isolated_store(tmp_path, monkeypatch):
    """Point the ambient store at a per-test directory, reset handles."""
    monkeypatch.setenv(ENV_VAR, str(tmp_path / "store"))
    runner.clear_caches()
    yield
    runner.clear_caches()


def _generate() -> None:
    runner.clear_caches()
    generate_trace(WORKLOAD, LENGTH, SEED)


class TestRoundTrip:
    def test_save_then_load_reproduces_trace(self):
        original = generate_trace(WORKLOAD, LENGTH, SEED)
        store = trace_store.active_store()
        assert store.stats.saves == 1
        loaded = store.load(WORKLOAD, LENGTH, SEED, GENERATOR_VERSION)
        assert loaded is not None
        assert loaded.name == original.name
        assert loaded.seed == original.seed
        assert loaded.metadata == original.metadata
        assert loaded.instructions == original.instructions
        assert (
            loaded.initial_memory.to_word_map()
            == original.initial_memory.to_word_map()
        )

    def test_loaded_trace_is_columnar_and_lazy(self):
        generate_trace(WORKLOAD, LENGTH, SEED)
        loaded = trace_store.active_store().load(
            WORKLOAD, LENGTH, SEED, GENERATOR_VERSION
        )
        assert loaded.columns is not None
        assert len(loaded) == LENGTH

    def test_second_process_like_access_hits(self):
        _generate()  # miss + save
        _generate()  # fresh handle and memo: must hit the disk entry
        store = trace_store.active_store()
        assert store.stats.hits == 1
        assert store.stats.misses == 0
        assert store.stats.saves == 0

    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR)
        runner.clear_caches()
        assert trace_store.active_store() is None
        trace = generate_trace(WORKLOAD, LENGTH, SEED)
        assert trace.columns is not None  # still packed for the hot loop


class TestKeying:
    def test_generator_version_changes_key(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        a = store.entry_path(WORKLOAD, LENGTH, SEED, 1)
        b = store.entry_path(WORKLOAD, LENGTH, SEED, 2)
        assert a != b

    def test_identity_fields_change_key(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        base = store.entry_path(WORKLOAD, LENGTH, SEED, GENERATOR_VERSION)
        assert base != store.entry_path(
            WORKLOAD, LENGTH + 1, SEED, GENERATOR_VERSION
        )
        assert base != store.entry_path(
            WORKLOAD, LENGTH, SEED + 1, GENERATOR_VERSION
        )
        assert base != store.entry_path(
            "astar", LENGTH, SEED, GENERATOR_VERSION
        )

    def test_hostile_workload_name_sanitized(self, tmp_path):
        store = TraceStore(tmp_path / "s")
        path = store.entry_path("../evil/name", LENGTH, SEED, 1)
        assert path.parent == store.root


class TestCorruption:
    def _entry_path(self):
        return trace_store.active_store().entry_path(
            WORKLOAD, LENGTH, SEED, GENERATOR_VERSION
        )

    def test_truncated_entry_regenerates(self):
        _generate()
        path = self._entry_path()
        path.write_bytes(path.read_bytes()[:50])
        _generate()
        store = trace_store.active_store()
        assert store.stats.corrupt == 1
        assert store.stats.saves == 1  # repaired
        assert store.load(
            WORKLOAD, LENGTH, SEED, GENERATOR_VERSION
        ) is not None

    def test_bit_flip_in_body_detected(self):
        _generate()
        path = self._entry_path()
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        loaded = trace_store.active_store().load(
            WORKLOAD, LENGTH, SEED, GENERATOR_VERSION
        )
        assert loaded is None
        assert trace_store.active_store().stats.corrupt == 1
        assert not path.exists()  # corrupt entries are evicted

    def test_garbage_file_counts_corrupt(self):
        _generate()
        path = self._entry_path()
        path.write_bytes(b"not a trace entry at all")
        assert trace_store.active_store().load(
            WORKLOAD, LENGTH, SEED, GENERATOR_VERSION
        ) is None
        assert trace_store.active_store().stats.corrupt == 1


class TestMaintenance:
    def test_scan_reports_entries(self):
        _generate()
        stats = trace_store.active_store().scan()
        assert stats["entries"] == 1
        assert stats["total_bytes"] > 0
        assert stats["files"][0]["file"].endswith(".trc")

    def test_clear_removes_entries(self):
        _generate()
        store = trace_store.active_store()
        assert store.clear() == 1
        assert store.scan()["entries"] == 0

    def test_ensure_stored(self):
        assert ensure_stored(WORKLOAD, LENGTH, SEED)
        store = trace_store.active_store()
        assert store.entry_path(
            WORKLOAD, LENGTH, SEED, GENERATOR_VERSION
        ).exists()
        # Second call is a cheap existence check, no regeneration.
        runner.clear_caches()
        assert ensure_stored(WORKLOAD, LENGTH, SEED)
        assert trace_store.active_store().stats.saves == 0

    def test_ensure_stored_without_store(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR)
        runner.clear_caches()
        assert not ensure_stored(WORKLOAD, LENGTH, SEED)

    def test_ensure_stored_after_late_env_export(
        self, tmp_path, monkeypatch
    ):
        """The store must populate even when the trace was memoized
        before REPRO_TRACE_CACHE_DIR existed (a long-running server
        whose env var is exported after first use)."""
        monkeypatch.delenv(ENV_VAR)
        trace_store.reset_active_store()
        generate_trace(WORKLOAD, LENGTH, SEED)  # memoized, store-less

        late_root = tmp_path / "late-store"
        monkeypatch.setenv(ENV_VAR, str(late_root))
        # active_store resolves the env var at call time, so the new
        # handle appears without any cache reset...
        assert trace_store.active_store() is not None
        # ...and ensure_stored writes the entry despite the memo hit.
        assert ensure_stored(WORKLOAD, LENGTH, SEED)
        assert trace_store.active_store().entry_path(
            WORKLOAD, LENGTH, SEED, GENERATOR_VERSION
        ).exists()

    def test_cache_cli_resolves_env_at_call_time(
        self, tmp_path, monkeypatch, capsys
    ):
        """`repro-lvp cache --stats/--clear` read the env var when the
        command runs, not when the module was imported."""
        import json

        from repro.cli import main

        root = tmp_path / "cli-store"
        _generate()  # populates the fixture store, not `root`
        monkeypatch.setenv(ENV_VAR, str(root))
        root.mkdir()
        assert main(["cache", "--stats"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0
        runner.clear_caches()
        generate_trace(WORKLOAD, LENGTH, SEED)
        assert main(["cache", "--stats"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 1
        assert main(["cache", "--clear"]) == 0
        assert "removed 1 file(s)" in capsys.readouterr().out


def _probe_cells(count: int) -> list[Cell]:
    return [
        Cell(
            id=f"probe/{i}",
            fn="_cells:trace_store_probe_cell",
            spec={"workload": WORKLOAD, "length": LENGTH, "seed": SEED},
        )
        for i in range(count)
    ]


class TestCrossProcessReuse:
    def test_pool_workers_hit_supervisor_prewarmed_store(self):
        # The supervisor populates the store once (the speedup-cell
        # pre-warm hook), then every pool worker loads packed columns
        # instead of regenerating.
        runner._prewarm_speedup_cells(
            [{"workload": WORKLOAD, "length": LENGTH, "seed": SEED}]
        )
        supervisor_store = trace_store.active_store()
        assert supervisor_store.stats.saves == 1

        report = run_cells(_probe_cells(3), ExecutionPolicy(workers=2))
        assert report.ok
        for outcome in report.outcomes.values():
            stats = outcome.value["store"]
            assert outcome.value["columnar"] is True
            assert stats["hits"] == 1
            assert stats["misses"] == 0
            assert stats["saves"] == 0
        # The store was populated exactly once, by the supervisor.
        assert supervisor_store.scan()["entries"] == 1

    def test_prewarm_hook_registered_for_speedup_cells(self):
        from repro.harness.resilient import _PREWARM_HOOKS

        assert runner.SPEEDUP_CELL_FN in _PREWARM_HOOKS

    def test_worker_regenerates_corrupted_entry(self):
        ensure_stored(WORKLOAD, LENGTH, SEED)
        store = trace_store.active_store()
        path = store.entry_path(WORKLOAD, LENGTH, SEED, GENERATOR_VERSION)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))

        report = run_cells(_probe_cells(1), ExecutionPolicy(workers=1))
        assert report.ok
        stats = report.outcomes["probe/0"].value["store"]
        assert stats["corrupt"] == 1
        assert stats["misses"] == 1
        assert stats["saves"] == 1  # worker repaired the entry
        # The repaired entry is valid again.
        runner.clear_caches()
        assert trace_store.active_store().load(
            WORKLOAD, LENGTH, SEED, GENERATOR_VERSION
        ) is not None
