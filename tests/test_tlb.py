"""Tests for the TLB model."""

import pytest

from repro.memory.tlb import PAGE_BITS, Tlb


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb(entries=16, associativity=2, walk_latency=20)
        assert tlb.access(0x1000) == 20
        assert tlb.access(0x1000) == 0
        assert tlb.access(0x1000 + 100) == 0  # same page

    def test_different_pages_miss(self):
        tlb = Tlb(entries=16, associativity=2)
        tlb.access(0x0)
        assert tlb.access(1 << PAGE_BITS) > 0

    def test_lru_within_set(self):
        tlb = Tlb(entries=2, associativity=2, walk_latency=5)
        pages = [i << PAGE_BITS for i in range(3)]
        tlb.access(pages[0])
        tlb.access(pages[1])
        tlb.access(pages[0])      # refresh
        tlb.access(pages[2])      # evicts page 1
        assert tlb.access(pages[0]) == 0
        assert tlb.access(pages[1]) == 5

    def test_hit_rate(self):
        tlb = Tlb(entries=16, associativity=2)
        tlb.access(0x0)
        tlb.access(0x0)
        assert tlb.hit_rate == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            Tlb(entries=10, associativity=3)
