"""Tests for the plain saturating counter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.counters import SaturatingCounter


class TestSaturatingCounter:
    def test_increment_saturates(self):
        counter = SaturatingCounter(maximum=2)
        assert counter.increment() == 1
        assert counter.increment() == 2
        assert counter.increment() == 2

    def test_decrement_floors_at_zero(self):
        counter = SaturatingCounter(maximum=3, value=1)
        assert counter.decrement() == 0
        assert counter.decrement() == 0

    def test_reset_returns_to_initial(self):
        counter = SaturatingCounter(maximum=3, value=2)
        counter.increment()
        counter.reset()
        assert counter.value == 2

    def test_is_saturated_and_at_least(self):
        counter = SaturatingCounter(maximum=2, value=2)
        assert counter.is_saturated()
        assert counter.at_least(2)
        assert not counter.at_least(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            SaturatingCounter(maximum=0)
        with pytest.raises(ValueError):
            SaturatingCounter(maximum=2, value=5)
        with pytest.raises(ValueError):
            SaturatingCounter(maximum=2, value=-1)

    @given(st.integers(min_value=1, max_value=16),
           st.lists(st.booleans(), max_size=100))
    def test_stays_in_bounds(self, maximum, operations):
        counter = SaturatingCounter(maximum=maximum)
        for up in operations:
            counter.increment() if up else counter.decrement()
            assert 0 <= counter.value <= maximum
