"""Edge-case tests for the core model's instruction handling."""

from repro.isa.instruction import Instruction, OpClass
from repro.isa.trace import Trace
from repro.memory.image import MemoryImage
from repro.pipeline import NoPredictor, simulate
from repro.pipeline.vp import SingleComponentAdapter
from repro.predictors import make_component


def _trace(instructions, name="edge"):
    trace = Trace(name, instructions)
    trace.initial_memory = MemoryImage()
    return trace


class TestDegenerateTraces:
    def test_empty_trace(self):
        result = simulate(_trace([]))
        assert result.cycles == 0
        assert result.instructions == 0

    def test_single_instruction(self):
        result = simulate(_trace([
            Instruction(pc=0x1000, op=OpClass.NOP)
        ]))
        assert result.cycles > 0
        assert result.instructions == 1

    def test_all_nops_run_at_fetch_width(self):
        n = 4000
        result = simulate(_trace([
            Instruction(pc=0x1000 + 4 * (i % 8), op=OpClass.NOP)
            for i in range(n)
        ]))
        # 4-wide fetch is the bound; pipeline fill is amortized.
        assert 2.0 < result.ipc <= 4.0

    def test_dependency_chain_is_serial(self):
        n = 2000
        result = simulate(_trace([
            Instruction(pc=0x1000, op=OpClass.INT_ALU, dest=1, srcs=(1,))
            for _ in range(n)
        ]))
        assert result.ipc <= 1.05  # one ALU per cycle through the chain


class TestPredictionEligibility:
    def test_no_predict_loads_never_probed(self):
        """Atomics/exclusives are excluded from prediction (Sec. III)."""
        probes = []
        adapter = SingleComponentAdapter(make_component("lvp", 64))
        original = adapter.predict
        adapter.predict = lambda p: probes.append(p) or original(p)
        trace = _trace([
            Instruction(pc=0x1000, op=OpClass.LOAD, dest=1, addr=0x10,
                        size=8, no_predict=True)
            for _ in range(50)
        ])
        result = simulate(trace, adapter)
        assert probes == []
        assert result.predictable_loads == 0
        assert result.loads == 50

    def test_stores_not_counted_as_loads(self):
        trace = _trace([
            Instruction(pc=0x1000, op=OpClass.STORE, addr=0x10, size=8,
                        value=1)
            for _ in range(50)
        ])
        result = simulate(trace)
        assert result.loads == 0


class TestBranchCosts:
    def test_unpredictable_branches_cost_cycles(self):
        import itertools

        def branchy(pattern):
            bits = itertools.cycle(pattern)
            return _trace([
                Instruction(pc=0x1000, op=OpClass.BRANCH_COND,
                            taken=next(bits), target=0x1000)
                for _ in range(3000)
            ])
        # A fixed pattern TAGE learns vs a pseudo-random one it cannot.
        predictable = simulate(branchy([True]))
        # de Bruijn-ish aperiodic-looking long pattern
        import random
        rng = random.Random(7)
        noisy = simulate(branchy([rng.random() < 0.5 for _ in range(997)]))
        assert noisy.cycles > predictable.cycles
        assert noisy.branch_mpki > predictable.branch_mpki


class TestLoadTiming:
    def test_dependent_load_chain_benefits_from_prediction(self):
        """The canonical VP case: serialized constant-address loads."""
        image = MemoryImage()
        image.write(0x8000, 8, 0x8000)
        instructions = []
        for _ in range(800):
            instructions.append(Instruction(
                pc=0x1000, op=OpClass.LOAD, dest=1, srcs=(1,),
                addr=0x8000, size=8, value=0x8000,
            ))
        trace = Trace("self-chain", instructions)
        trace.initial_memory = image
        baseline = simulate(trace, NoPredictor())
        lvp = simulate(trace, SingleComponentAdapter(make_component("lvp", 64)))
        # The chain breaks where predictions land; back-to-back loads
        # also exercise the finite VPE (entries held until validation).
        assert lvp.cycles < baseline.cycles * 0.75
        assert lvp.dropped_queue_full > 0
