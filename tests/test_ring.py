"""Consistent-hash ring: determinism, balance, minimal movement.

The ring is the sharded tier's placement function, so three properties
are load-bearing: (1) lookups are identical in every process -- the
router, the chaos harness, and any client must agree on which shard
owns a session (Python's salted ``hash()`` would not); (2) keys spread
evenly enough that no shard becomes a hotspot; (3) adding or removing
a shard moves only the keys it must -- a key that changes owner on add
moves *to* the new shard, and on remove only the dead shard's keys
move.  Migration cost is proportional to movement, so (3) is what
makes rebalancing affordable.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.serve.ring import DEFAULT_REPLICAS, HashRing
from repro.serve.shardmgr import shard_name

KEYS = [f"session-{i}" for i in range(2000)]


def _shards(n):
    return [shard_name(i) for i in range(n)]


class TestDeterminism:
    def test_lookup_is_stable_across_processes(self):
        """A fresh interpreter (fresh hash salt) agrees on every key.

        This is the property that lets the crashtest harness compute
        which worker owns a session without asking the router.
        """
        shards = _shards(4)
        keys = KEYS[:200]
        script = (
            "import json, sys\n"
            "from repro.serve.ring import HashRing\n"
            "ring = HashRing(%r)\n"
            "print(json.dumps([ring.lookup(k) for k in %r]))\n"
        ) % (shards, keys)
        src_root = str(Path(__file__).resolve().parents[1] / "src")
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": src_root, "PYTHONHASHSEED": "random"},
        )
        ring = HashRing(shards)
        assert json.loads(out.stdout) == [ring.lookup(k) for k in keys]

    def test_shard_order_does_not_matter(self):
        a = HashRing(["s-a", "s-b", "s-c"])
        b = HashRing(["s-c", "s-a", "s-b"])
        assert [a.lookup(k) for k in KEYS] == [b.lookup(k) for k in KEYS]

    def test_describe_reports_topology(self):
        ring = HashRing(_shards(3))
        desc = ring.describe()
        assert desc["replicas"] == DEFAULT_REPLICAS
        assert desc["points"] == 3 * DEFAULT_REPLICAS
        assert sorted(desc["shards"]) == _shards(3)
        assert sum(desc["points_per_shard"].values()) == desc["points"]


class TestBalance:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 8, 16])
    def test_every_shard_gets_a_fair_share(self, shards):
        ring = HashRing(_shards(shards))
        counts = {name: 0 for name in _shards(shards)}
        for key in KEYS:
            counts[ring.lookup(key)] += 1
        mean = len(KEYS) / shards
        # 64 virtual points per shard keeps the spread tight; these
        # bounds are loose enough to be salt-free-deterministic and
        # tight enough to catch a broken hash or a missing vnode loop.
        assert min(counts.values()) >= 0.5 * mean
        assert max(counts.values()) <= 1.75 * mean

    def test_assignments_matches_lookup(self):
        ring = HashRing(_shards(4))
        placement = ring.assignments(KEYS[:100])
        assert placement == {k: ring.lookup(k) for k in KEYS[:100]}
        assert set(placement.values()) <= set(_shards(4))


class TestMinimalMovement:
    def test_adding_a_shard_only_moves_keys_to_it(self):
        before = HashRing(_shards(4))
        owners_before = {k: before.lookup(k) for k in KEYS}
        before.add(shard_name(4))
        moved = 0
        for key, old in owners_before.items():
            new = before.lookup(key)
            if new != old:
                # Consistent hashing's defining property: a key never
                # moves between two surviving shards.
                assert new == shard_name(4)
                moved += 1
        # The new shard takes roughly 1/5 of the keyspace, not half of
        # it (that would be mod-N rehashing) and not nothing.
        assert 0.05 * len(KEYS) <= moved <= 0.40 * len(KEYS)

    def test_removing_a_shard_only_moves_its_keys(self):
        ring = HashRing(_shards(4))
        owners_before = {k: ring.lookup(k) for k in KEYS}
        victim = shard_name(2)
        ring.remove(victim)
        for key, old in owners_before.items():
            new = ring.lookup(key)
            if old == victim:
                assert new != victim
            else:
                assert new == old

    def test_add_then_remove_is_identity(self):
        ring = HashRing(_shards(3))
        owners = {k: ring.lookup(k) for k in KEYS[:500]}
        ring.add("transient")
        ring.remove("transient")
        assert {k: ring.lookup(k) for k in KEYS[:500]} == owners


class TestEdges:
    def test_empty_ring_lookup_raises(self):
        with pytest.raises(ValueError):
            HashRing().lookup("anything")

    def test_duplicate_add_raises(self):
        ring = HashRing(["only"])
        with pytest.raises(ValueError):
            ring.add("only")

    def test_remove_unknown_raises(self):
        with pytest.raises(ValueError):
            HashRing(["only"]).remove("other")

    def test_contains_and_len(self):
        ring = HashRing(_shards(2))
        assert len(ring) == 2
        assert shard_name(0) in ring
        assert "nope" not in ring

    def test_single_shard_owns_everything(self):
        ring = HashRing(["solo"])
        assert all(ring.lookup(k) == "solo" for k in KEYS[:50])
