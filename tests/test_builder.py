"""Tests for the program builder (PC/data/register allocation)."""

import pytest

from repro.common.rng import DeterministicRng
from repro.workloads.builder import CODE_BASE, DATA_BASE, ProgramBuilder


@pytest.fixture
def builder():
    return ProgramBuilder(DeterministicRng(0))


class TestCodeAllocation:
    def test_blocks_are_cache_line_separated(self, builder):
        a = builder.alloc_code(3)
        b = builder.alloc_code(3)
        assert a == CODE_BASE
        assert b - a >= 64
        assert b % 64 == 0

    def test_instruction_pcs_are_aligned(self, builder):
        base = builder.alloc_code(10)
        assert base % 4 == 0

    def test_rejects_empty(self, builder):
        with pytest.raises(ValueError):
            builder.alloc_code(0)


class TestDataAllocation:
    def test_regions_do_not_overlap(self, builder):
        a = builder.alloc_data(100)
        b = builder.alloc_data(100)
        assert a >= DATA_BASE
        assert b >= a + 100

    def test_alignment(self, builder):
        builder.alloc_data(7)
        b = builder.alloc_data(8, align=64)
        assert b % 64 == 0

    def test_rejects_empty(self, builder):
        with pytest.raises(ValueError):
            builder.alloc_data(0)

    def test_populate(self, builder):
        base = builder.alloc_data(4 * 8)
        builder.populate(base, 4, 8, lambda i: i * 10)
        assert builder.memory.read(base + 16, 8) == 20


class TestRegisters:
    def test_round_robin(self, builder):
        regs = builder.alloc_regs(5)
        assert regs == [0, 1, 2, 3, 4]

    def test_wraps_at_31(self, builder):
        builder.alloc_regs(30)
        regs = builder.alloc_regs(3)
        assert regs == [30, 0, 1]


class TestKernelIds:
    def test_monotonic_unique(self, builder):
        ids = [builder.next_kernel_id() for _ in range(5)]
        assert ids == sorted(set(ids))
