"""Integration tests for the core timing model."""

import pytest

from repro.composite import CompositeConfig, CompositePredictor
from repro.isa.instruction import Instruction, OpClass
from repro.isa.trace import Trace
from repro.memory.image import MemoryImage
from repro.pipeline import (
    CoreConfig,
    NoPredictor,
    SingleComponentAdapter,
    simulate,
)
from repro.predictors import make_component
from repro.workloads import generate_trace


def _chain_trace(n=400):
    """A serial chain of constant-address, constant-value loads where
    each load's address register comes from the previous load: VP is
    the only way to break the chain."""
    instructions = []
    image = MemoryImage()
    image.write(0x8000, 8, 0x8000)  # self-pointer: value == address
    for _ in range(n):
        instructions.append(Instruction(
            pc=0x1000, op=OpClass.LOAD, dest=1, srcs=(1,),
            addr=0x8000, size=8, value=0x8000,
        ))
        instructions.append(Instruction(
            pc=0x1004, op=OpClass.INT_ALU, dest=2, srcs=(1, 2),
        ))
    trace = Trace("chain", instructions)
    trace.initial_memory = image
    return trace


class TestBaseline:
    def test_runs_and_reports(self):
        result = simulate(generate_trace("coremark", 4000))
        assert result.cycles > 0
        assert 0.1 < result.ipc < 4.0
        assert result.loads > 0
        assert result.predicted_loads == 0  # no predictor

    def test_deterministic(self):
        trace = generate_trace("coremark", 4000)
        assert simulate(trace).cycles == simulate(trace).cycles

    def test_ipc_bounded_by_widths(self):
        result = simulate(generate_trace("linpack", 4000))
        assert result.ipc <= CoreConfig().commit_width


class TestValuePredictionEffects:
    def test_correct_predictions_speed_up_chains(self):
        trace = _chain_trace()
        baseline = simulate(trace)
        lvp = SingleComponentAdapter(make_component("lvp", 256))
        result = simulate(trace, lvp)
        assert result.coverage > 0.5
        assert result.accuracy == 1.0
        assert result.cycles < baseline.cycles

    def test_speedup_over_requires_same_trace(self):
        a = simulate(generate_trace("coremark", 3000))
        b = simulate(generate_trace("coremark", 4000))
        with pytest.raises(ValueError):
            b.speedup_over(a)

    def test_mispredictions_cost_cycles(self):
        """An adversarial trace (value flips each instance after a warm
        constant phase) must not be faster than baseline."""
        instructions = []
        image = MemoryImage()
        pc, addr = 0x1000, 0x8000
        value = 7
        image.write(addr, 8, value)
        for i in range(600):
            flip = i > 300 and i % 2 == 0
            v = 99 if flip else value
            instructions.append(Instruction(
                pc=pc, op=OpClass.LOAD, dest=1, addr=addr, size=8, value=v,
            ))
            instructions.append(Instruction(
                pc=0x1004, op=OpClass.INT_ALU, dest=2, srcs=(1,),
            ))
        trace = Trace("adversarial", instructions)
        trace.initial_memory = image
        lvp = SingleComponentAdapter(make_component("lvp", 64))
        result = simulate(trace, lvp)
        assert result.value_mispredictions > 0
        baseline = simulate(trace)
        assert result.cycles >= baseline.cycles

    def test_composite_runs_end_to_end(self):
        trace = generate_trace("mcf", 8000)
        composite = CompositePredictor(
            CompositeConfig(epoch_instructions=1000).homogeneous(256)
        )
        result = simulate(trace, composite)
        assert result.coverage > 0.1
        assert result.accuracy > 0.97
        assert result.predictor_storage_bits == composite.storage_bits()

    def test_address_predictions_resolve_through_probe(self):
        trace = generate_trace("linpack", 8000)
        sap = SingleComponentAdapter(make_component("sap", 1024))
        result = simulate(trace, sap)
        assert result.predicted_loads > 0
        assert result.accuracy > 0.95


class TestStatistics:
    def test_branch_mpki_sane(self):
        result = simulate(generate_trace("gcc2k", 8000))
        assert 0 <= result.branch_mpki < 60

    def test_coverage_and_accuracy_bounds(self):
        trace = generate_trace("v8", 6000)
        composite = CompositePredictor(
            CompositeConfig(epoch_instructions=1000).homogeneous(256)
        )
        result = simulate(trace, composite)
        assert 0.0 <= result.coverage <= 1.0
        assert 0.0 <= result.accuracy <= 1.0
        assert result.correct_predictions <= result.predicted_loads

    def test_no_predictor_is_default(self):
        trace = generate_trace("coremark", 2000)
        assert simulate(trace, NoPredictor()).cycles == simulate(trace).cycles
