"""Tests for the content-addressed results database.

Covers the fingerprint contract (what changes a key and what must
not), the on-disk entry format (atomic writes, corruption -> evict and
recompute), the supervisor integration (DB hits journaled as
``cached``, write-back on success, usage accounting), and the
cross-process acceptance scenario: a sweep killed mid-campaign is
repopulated by a *different* process, and the resume serves every
missing cell from the database without re-running any cell body.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.harness import resilient, resultsdb
from repro.harness.resilient import Cell, ExecutionPolicy, RetryPolicy, run_cells
from repro.harness.resultsdb import (
    ResultsDb,
    cell_fingerprint,
    register_semantics,
)

REPO = Path(__file__).resolve().parent.parent

FAST_RETRY = RetryPolicy(max_retries=0, backoff=0.001)


def counting_cells(counter: Path, count: int = 3, prefix: str = "db") -> list[Cell]:
    return [
        Cell(
            id=f"{prefix}/{i}",
            fn="_cells:counting_cell",
            spec={"x": i, "counter_path": str(counter)},
        )
        for i in range(count)
    ]


def computations(counter: Path) -> int:
    """True number of cell-body executions, from the side-effect file."""
    return len(counter.read_text().splitlines()) if counter.exists() else 0


@pytest.fixture
def db(tmp_path, monkeypatch):
    """An activated results database in a fresh directory."""
    root = tmp_path / "resultsdb"
    monkeypatch.setenv(resultsdb.ENV_VAR, str(root))
    resultsdb.reset_active_db()
    yield resultsdb.active_db()
    resultsdb.reset_active_db()


class TestFingerprint:
    def test_deterministic_and_spec_sensitive(self):
        fp = cell_fingerprint("_cells:echo_cell", {"x": 1})
        assert fp == cell_fingerprint("_cells:echo_cell", {"x": 1})
        assert len(fp) == 64
        assert fp != cell_fingerprint("_cells:echo_cell", {"x": 2})
        assert fp != cell_fingerprint("_cells:boom_cell", {"x": 1})

    def test_key_order_is_canonical(self):
        assert cell_fingerprint("_cells:echo_cell", {"a": 1, "b": 2}) == \
            cell_fingerprint("_cells:echo_cell", {"b": 2, "a": 1})

    def test_dataclass_specs_canonicalize(self):
        from repro.composite.config import CompositeConfig

        config = CompositeConfig()
        spec = {"predictor": {"kind": "composite", "config": config}}
        assert cell_fingerprint("_cells:echo_cell", spec) == \
            cell_fingerprint("_cells:echo_cell", spec)

    def test_semantics_bump_changes_fingerprint(self):
        before = cell_fingerprint("_cells:echo_cell", {"x": 1})
        register_semantics("tests.fake_module", 1)
        try:
            bumped = cell_fingerprint("_cells:echo_cell", {"x": 1})
            assert bumped != before
            register_semantics("tests.fake_module", 2)
            assert cell_fingerprint("_cells:echo_cell", {"x": 1}) != bumped
        finally:
            resultsdb._SEMANTICS.pop("tests.fake_module", None)

    def test_cell_fn_module_semantics_are_registered_first(self):
        # Fingerprinting a runner cell from a fresh registry must first
        # import the runner (which registers the timing/functional/
        # generator versions), so readers and writers agree.
        from repro.harness.runner import SPEEDUP_CELL_FN

        cell_fingerprint(SPEEDUP_CELL_FN, {"x": 1})
        versions = resultsdb.semantics_versions()
        assert "repro.pipeline.core" in versions
        assert "repro.harness.functional" in versions
        assert "repro.workloads.generator" in versions


class TestResultsDbStorage:
    def test_roundtrip_and_stats(self, db):
        assert db.lookup("ab" * 32) == (False, None)
        assert db.store("ab" * 32, {"v": 1})
        hit, value = db.lookup("ab" * 32)
        assert hit and value == {"v": 1}
        assert db.stats.saves == 1
        assert db.stats.misses == 1
        assert db.stats.hits == 1
        assert db.stats.memo_hits == 1  # store memoizes

    def test_none_is_a_legal_value(self, db):
        db.store("cd" * 32, None)
        assert db.lookup("cd" * 32) == (True, None)

    def test_disk_hit_without_memo(self, db):
        db.store("ef" * 32, [1, 2, 3])
        fresh = ResultsDb(db.root)
        hit, value = fresh.lookup("ef" * 32)
        assert hit and value == [1, 2, 3]
        assert fresh.stats.memo_hits == 0

    @pytest.mark.parametrize("damage", [
        "garbage",
        "{}",
        json.dumps({"magic": "wrong", "format": 1}),
        json.dumps({"magic": "repro-resultsdb", "format": 99}),
        json.dumps({
            "magic": "repro-resultsdb", "format": 1,
            "fingerprint": "0" * 64, "value_sha256": "x", "value": 1,
        }),
    ])
    def test_corrupt_entry_evicted_and_missed(self, db, damage):
        fp = "12" * 32
        db.store(fp, {"v": 1})
        path = db.entry_path(fp)
        path.write_text(damage + "\n")
        fresh = ResultsDb(db.root)
        assert fresh.lookup(fp) == (False, None)
        assert fresh.stats.corrupt == 1
        assert not path.exists()  # evicted: the next store repairs it

    def test_checksum_mismatch_is_corruption(self, db):
        fp = "34" * 32
        db.store(fp, {"v": 1})
        path = db.entry_path(fp)
        record = json.loads(path.read_text())
        record["value"] = {"v": 2}  # tampered value, stale checksum
        path.write_text(json.dumps(record))
        fresh = ResultsDb(db.root)
        assert fresh.lookup(fp) == (False, None)
        assert fresh.stats.corrupt == 1

    def test_store_failure_counts_not_raises(self, tmp_path):
        blocked = tmp_path / "file"
        blocked.write_text("x")
        db = ResultsDb(blocked / "nested")  # parent is a file
        assert db.store("ab" * 32, {"v": 1}) is False
        assert db.stats.save_errors == 1

    def test_scan_and_clear(self, db):
        for i in range(3):
            db.store(f"{i}{i}" * 32, {"v": i})
        scan = db.scan()
        assert scan["entries"] == 3
        assert scan["total_bytes"] > 0
        assert db.clear() == 3
        assert db.scan()["entries"] == 0
        assert db.lookup("00" * 32) == (False, None)

    def test_active_db_follows_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(resultsdb.ENV_VAR, raising=False)
        resultsdb.reset_active_db()
        assert resultsdb.active_db() is None
        monkeypatch.setenv(resultsdb.ENV_VAR, str(tmp_path / "a"))
        first = resultsdb.active_db()
        assert first is not None and first is resultsdb.active_db()
        monkeypatch.setenv(resultsdb.ENV_VAR, str(tmp_path / "b"))
        assert resultsdb.active_db() is not first


class TestSupervisorIntegration:
    def test_repeat_sweep_recomputes_nothing(self, db, tmp_path):
        counter = tmp_path / "count"
        cells = counting_cells(counter)
        first = run_cells(cells, ExecutionPolicy())
        assert first.ok
        assert computations(counter) == 3
        assert first.db_usage.as_dict() == {
            "lookups": 3, "hits": 0, "computed": 3,
            "journal_replayed": 0, "stored": 3, "hit_rate": 0.0,
        }
        again = run_cells(cells, ExecutionPolicy())
        assert again.values() == first.values()
        assert computations(counter) == 3  # zero recomputed cells
        assert all(
            o.status == "cached" and o.source == "db"
            for o in again.outcomes.values()
        )
        assert again.db_usage.hit_rate == 1.0
        totals = resilient.db_usage_totals()
        assert totals.lookups == 6 and totals.hits == 3

    def test_no_db_means_no_usage(self, tmp_path, monkeypatch):
        monkeypatch.delenv(resultsdb.ENV_VAR, raising=False)
        resultsdb.reset_active_db()
        report = run_cells(
            counting_cells(tmp_path / "count"), ExecutionPolicy()
        )
        assert report.ok
        assert report.db_usage is None

    def test_pool_workers_share_the_db(self, db, tmp_path):
        counter = tmp_path / "count"
        cells = counting_cells(counter, prefix="pool")
        env_path = os.pathsep.join([str(REPO / "src"), str(REPO / "tests")])
        os.environ["PYTHONPATH"] = env_path
        first = run_cells(cells, ExecutionPolicy(workers=1))
        assert first.ok
        assert computations(counter) == 3
        again = run_cells(cells, ExecutionPolicy(workers=1))
        assert again.ok
        assert computations(counter) == 3
        assert all(o.source == "db" for o in again.outcomes.values())

    def test_failed_cells_not_stored(self, db):
        cells = [Cell(id="bad", fn="_cells:boom_cell", spec={"x": 1})]
        report = run_cells(cells, ExecutionPolicy(retry=FAST_RETRY))
        assert not report.ok
        assert db.scan()["entries"] == 0
        again = run_cells(cells, ExecutionPolicy(retry=FAST_RETRY))
        assert not again.ok  # failure recomputed, never served

    def test_corrupt_entry_recomputed_via_sweep(self, db, tmp_path):
        counter = tmp_path / "count"
        cells = counting_cells(counter)
        run_cells(cells, ExecutionPolicy())
        victim = db.entry_path(
            cell_fingerprint(cells[1].fn, cells[1].spec)
        )
        victim.write_text("torn write\n")
        resultsdb.reset_active_db()  # fresh memo, like a new process
        report = run_cells(cells, ExecutionPolicy())
        assert report.ok
        assert computations(counter) == 4  # exactly the victim re-ran
        assert report.outcomes["db/1"].status == "ok"
        assert report.outcomes["db/0"].status == "cached"
        db2 = resultsdb.active_db()
        assert db2.stats.corrupt == 1
        assert victim.exists()  # write-back repaired the entry

    def test_journal_replay_wins_over_db(self, db, tmp_path):
        counter = tmp_path / "count"
        journal = tmp_path / "j.jsonl"
        cells = counting_cells(counter)
        run_cells(cells, ExecutionPolicy(journal_path=str(journal)))
        resumed = run_cells(
            cells, ExecutionPolicy(journal_path=str(journal), resume=True)
        )
        assert all(o.source == "journal" for o in resumed.outcomes.values())
        assert resumed.db_usage.journal_replayed == 3
        assert resumed.db_usage.lookups == 0  # DB never consulted

    def test_db_hits_journaled_as_cached_for_resume(self, db, tmp_path):
        counter = tmp_path / "count"
        cells = counting_cells(counter)
        run_cells(cells, ExecutionPolicy())  # populate the DB
        journal = tmp_path / "j.jsonl"
        first = run_cells(
            cells, ExecutionPolicy(journal_path=str(journal))
        )
        assert all(o.source == "db" for o in first.outcomes.values())
        records = [
            json.loads(line) for line in
            journal.read_text().splitlines()
        ]
        cell_records = [r for r in records if r.get("type") == "cell"]
        assert all(r["status"] == "cached" for r in cell_records)
        assert all("value" in r for r in cell_records)
        # A resume replays those journaled cached cells untouched.
        resumed = run_cells(
            cells, ExecutionPolicy(journal_path=str(journal), resume=True)
        )
        assert all(o.source == "journal" for o in resumed.outcomes.values())
        assert resumed.values() == first.values()
        assert computations(counter) == 3


DRIVER = """\
import json, sys
from repro.harness import resilient

counter = sys.argv[1]
cells = [
    resilient.Cell(
        id=f"xp/{i}", fn="_cells:counting_cell",
        spec={"x": i, "counter_path": counter},
    )
    for i in range(5)
]
policy = resilient.ExecutionPolicy(
    journal_path=sys.argv[2] if sys.argv[2] != "-" else None,
    resume="--resume" in sys.argv[3:],
    retry=resilient.RetryPolicy(max_retries=0, backoff=0.001),
)
report = resilient.run_cells(cells, policy)
print(json.dumps({
    "values": report.values(),
    "statuses": {k: o.status for k, o in report.outcomes.items()},
    "sources": {k: o.source for k, o in report.outcomes.items()},
    "db": report.db_usage.as_dict() if report.db_usage else None,
}, sort_keys=True))
"""


def _run_driver(tmp_path, db_root, counter, journal, *args, fault=None):
    env = dict(os.environ)
    env.pop(resilient.FAULT_PLAN_ENV, None)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src"), str(REPO / "tests")]
    )
    env[resultsdb.ENV_VAR] = str(db_root)
    if fault:
        env[resilient.FAULT_PLAN_ENV] = fault
    script = tmp_path / "driver.py"
    script.write_text(DRIVER)
    return subprocess.run(
        [sys.executable, str(script), str(counter), str(journal), *args],
        capture_output=True, text=True, env=env, timeout=120,
    )


class TestCrossProcessReuse:
    """The acceptance scenario: kill, repopulate elsewhere, resume."""

    def test_kill_repopulate_resume_never_recomputes(self, tmp_path):
        db_root = tmp_path / "resultsdb"
        counter = tmp_path / "count"
        journal = tmp_path / "j.jsonl"

        # Process 1: killed mid-campaign (cells xp/0, xp/1 complete).
        crashed = _run_driver(
            tmp_path, db_root, counter, journal, fault="xp/2:crash:99"
        )
        assert crashed.returncode == 70, crashed.stderr
        killed_at = len(counter.read_text().splitlines())
        assert 0 < killed_at < 5

        # Process 2: a different campaign (no journal) computes the
        # full set -- the survivors come from the DB, the rest run.
        other = _run_driver(tmp_path, db_root, counter, "-")
        assert other.returncode == 0, other.stderr
        assert len(counter.read_text().splitlines()) == 5

        # Process 3: resume the original journal.  Journal replay
        # covers the pre-kill cells, the DB serves everything else;
        # no cell body runs anywhere.
        resumed = _run_driver(tmp_path, db_root, counter, journal, "--resume")
        assert resumed.returncode == 0, resumed.stderr
        assert len(counter.read_text().splitlines()) == 5
        out = json.loads(resumed.stdout)
        assert all(s == "cached" for s in out["statuses"].values())
        assert set(out["sources"].values()) <= {"journal", "db"}
        assert "db" in out["sources"].values()
        assert out["db"]["computed"] == 0

        # Byte-identical to an uninterrupted clean run (fresh DB and
        # counter so nothing is shared).
        clean = _run_driver(
            tmp_path, tmp_path / "clean-db", tmp_path / "clean-count",
            tmp_path / "clean.jsonl",
        )
        assert clean.returncode == 0, clean.stderr
        assert json.dumps(out["values"], sort_keys=True) == \
            json.dumps(json.loads(clean.stdout)["values"], sort_keys=True)

    def test_deliberate_corruption_recovers_cross_process(self, tmp_path):
        db_root = tmp_path / "resultsdb"
        counter = tmp_path / "count"
        first = _run_driver(tmp_path, db_root, counter, "-")
        assert first.returncode == 0, first.stderr
        entries = sorted(db_root.glob("??/*.res"))
        assert len(entries) == 5
        entries[0].write_text("definitely not json {{{\n")

        again = _run_driver(tmp_path, db_root, counter, "-")
        assert again.returncode == 0, again.stderr
        out = json.loads(again.stdout)
        assert out["db"]["computed"] == 1  # only the corrupted entry
        assert len(counter.read_text().splitlines()) == 6
        assert json.loads(first.stdout)["values"] == out["values"]
