"""Tests for result formatting."""

from repro.harness.formatting import frac, pct, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "------" in lines[1]
        assert len(lines) == 4

    def test_empty_rows(self):
        text = render_table(["x"], [])
        assert "x" in text


class TestNumbers:
    def test_pct_signed(self):
        assert pct(0.054) == "+5.40%"
        assert pct(-0.01) == "-1.00%"

    def test_frac(self):
        assert frac(0.425) == "42.5%"


class TestExperimentFormatters:
    def test_fig10_formatter(self):
        from repro.harness.formatting import format_fig10

        result = {
            "totals": {
                1024: {
                    "storage_kib": 9.56, "composite": 0.02,
                    "best_component": 0.012, "best_component_name": "sap",
                    "improvement": 0.66,
                }
            }
        }
        text = format_fig10(result)
        assert "SAP" in text and "+66%" in text

    def test_fig11_formatter(self):
        from repro.harness.formatting import format_fig11

        result = {
            "contenders": {
                "composite-9.6kb": {"speedup": 0.049, "coverage": 0.48},
                "eves-32kb": {"speedup": 0.031, "coverage": 0.206},
            },
            "composite96_vs_eves32": {
                "speedup_increase": 0.55, "coverage_increase": 1.33,
            },
        }
        text = format_fig11(result)
        assert "eves-32kb" in text
        assert "+55%" in text and "+133%" in text
