"""Tests for the store-set memory dependence predictor."""

from repro.pipeline.memdep import StoreSetPredictor


class TestStoreSets:
    def test_cold_load_is_unconstrained(self):
        predictor = StoreSetPredictor()
        assert predictor.load_wait_until(0x1000) == -1

    def test_violation_creates_store_set(self):
        predictor = StoreSetPredictor()
        predictor.record_violation(0x1000, 0x2000)
        predictor.note_store(0x2000, data_ready=500)
        assert predictor.load_wait_until(0x1000) == 500

    def test_unrelated_store_does_not_throttle(self):
        predictor = StoreSetPredictor()
        predictor.record_violation(0x1000, 0x2000)
        predictor.note_store(0x3000, data_ready=500)  # different set
        assert predictor.load_wait_until(0x1000) == -1

    def test_set_merging(self):
        predictor = StoreSetPredictor()
        predictor.record_violation(0x1000, 0x2000)
        predictor.record_violation(0x1000, 0x3000)  # second store joins
        predictor.note_store(0x3000, data_ready=900)
        assert predictor.load_wait_until(0x1000) == 900

    def test_merge_existing_sets(self):
        predictor = StoreSetPredictor()
        predictor.record_violation(0x1000, 0x2000)
        predictor.record_violation(0x5000, 0x6000)
        predictor.record_violation(0x1000, 0x6000)  # bridges both sets
        predictor.note_store(0x6000, data_ready=700)
        assert predictor.load_wait_until(0x1000) == 700

    def test_flash_clear(self):
        predictor = StoreSetPredictor(clear_interval=3)
        predictor.record_violation(0x1000, 0x2000)
        for _ in range(4):
            predictor.note_store(0x2000, data_ready=100)
        assert predictor.load_wait_until(0x1000) == -1  # cleared

    def test_counters(self):
        predictor = StoreSetPredictor()
        predictor.record_violation(0x1000, 0x2000)
        predictor.note_store(0x2000, 5)
        predictor.load_wait_until(0x1000)
        assert predictor.violations == 1
        assert predictor.waits_enforced == 1

    def test_storage_positive(self):
        assert StoreSetPredictor().storage_bits() > 0


class TestPipelineIntegration:
    def test_violations_detected_and_learned(self):
        """A tight store->load pair first violates, then waits."""
        from repro.isa.instruction import Instruction, OpClass
        from repro.isa.trace import Trace
        from repro.memory.image import MemoryImage
        from repro.pipeline import simulate

        instructions = []
        for i in range(100):
            instructions.append(Instruction(
                pc=0x1000, op=OpClass.STORE, srcs=(1,), addr=0x8000,
                size=8, value=i,
            ))
            instructions.append(Instruction(
                pc=0x1004, op=OpClass.LOAD, dest=2, addr=0x8000, size=8,
                value=i,
            ))
        trace = Trace("dep", instructions)
        trace.initial_memory = MemoryImage()
        result = simulate(trace)
        assert 1 <= result.memory_order_violations < 10  # learned quickly

    def test_perfect_oracle_has_no_violations(self):
        from repro.pipeline import CoreConfig, simulate
        from repro.workloads import generate_trace

        config = CoreConfig(memory_dependence="perfect")
        result = simulate(generate_trace("v8", 8000), config=config)
        assert result.memory_order_violations == 0

    def test_store_sets_converge_on_real_workloads(self):
        from repro.pipeline import simulate
        from repro.workloads import generate_trace

        result = simulate(generate_trace("v8", 8000))
        # Violations happen but the predictor keeps them rare.
        assert result.memory_order_violations < result.loads * 0.02
