"""Tests for the integrated branch unit (TAGE + ITTAGE + RAS)."""

import pytest

from repro.branch.unit import BranchUnit
from repro.isa.instruction import Instruction, OpClass


def _cond(pc, taken):
    return Instruction(pc=pc, op=OpClass.BRANCH_COND, taken=taken,
                       target=0x100)


class TestConditional:
    def test_learns_biased_branch(self):
        unit = BranchUnit()
        for _ in range(200):
            inst = _cond(0x1000, True)
            outcome = unit.fetch_branch(inst)
            unit.resolve(inst, outcome)
        assert unit.accuracy() > 0.9

    def test_counts_mispredictions(self):
        unit = BranchUnit()
        inst = _cond(0x1000, True)
        for _ in range(50):
            outcome = unit.fetch_branch(inst)
            unit.resolve(inst, outcome)
        assert unit.conditional_predictions == 50
        assert unit.mpki_numerator == unit.conditional_mispredictions


class TestUnconditional:
    def test_direct_never_mispredicts(self):
        unit = BranchUnit()
        inst = Instruction(pc=0x1000, op=OpClass.BRANCH_DIRECT, taken=True,
                           target=0x2000)
        assert not unit.fetch_branch(inst).mispredicted

    def test_non_branch_rejected(self):
        unit = BranchUnit()
        with pytest.raises(ValueError):
            unit.fetch_branch(Instruction(pc=0x1000, op=OpClass.INT_ALU))


class TestCallsAndReturns:
    def test_call_return_pairing(self):
        unit = BranchUnit()
        call = Instruction(pc=0x1000, op=OpClass.BRANCH_DIRECT, taken=True,
                           target=0x9000, is_call=True)
        ret = Instruction(pc=0x9010, op=OpClass.BRANCH_RETURN, taken=True,
                          target=0x1004)
        unit.fetch_branch(call)
        assert not unit.fetch_branch(ret).mispredicted

    def test_mismatched_return_detected(self):
        unit = BranchUnit()
        ret = Instruction(pc=0x9010, op=OpClass.BRANCH_RETURN, taken=True,
                          target=0x1234)
        assert unit.fetch_branch(ret).mispredicted  # empty RAS -> 0

    def test_nested_calls(self):
        unit = BranchUnit()
        for depth in range(4):
            call = Instruction(pc=0x1000 + depth * 0x100,
                               op=OpClass.BRANCH_DIRECT, taken=True,
                               target=0x9000, is_call=True)
            unit.fetch_branch(call)
        for depth in reversed(range(4)):
            ret = Instruction(pc=0x9010, op=OpClass.BRANCH_RETURN, taken=True,
                              target=0x1004 + depth * 0x100)
            assert not unit.fetch_branch(ret).mispredicted


class TestIndirect:
    def test_learns_monomorphic_target(self):
        unit = BranchUnit()
        inst = Instruction(pc=0x3000, op=OpClass.BRANCH_INDIRECT, taken=True,
                           target=0x7000)
        for _ in range(20):
            outcome = unit.fetch_branch(inst)
            unit.resolve(inst, outcome)
        outcome = unit.fetch_branch(inst)
        assert not outcome.mispredicted

    def test_history_updated_for_value_predictors(self):
        unit = BranchUnit()
        unit.note_memory_op(0x5004)
        assert unit.histories.load_path != 0
        unit.note_load(0x5008)  # alias works
        assert unit.histories.load_path < (1 << 32)
