"""Tests that the example scripts are runnable."""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


class TestExamples:
    def test_examples_exist(self):
        names = {path.name for path in EXAMPLES}
        assert "quickstart.py" in names
        assert len(EXAMPLES) >= 3  # the deliverable minimum

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_quickstart_runs_end_to_end(self):
        result = subprocess.run(
            [sys.executable, "examples/quickstart.py", "coremark", "6000"],
            capture_output=True, text=True, timeout=300,
            cwd=Path(__file__).parent.parent,
        )
        assert result.returncode == 0, result.stderr
        assert "speedup" in result.stdout
        assert "coverage" in result.stdout

    def test_quickstart_rejects_unknown_workload(self):
        result = subprocess.run(
            [sys.executable, "examples/quickstart.py", "not-a-workload"],
            capture_output=True, text=True, timeout=60,
            cwd=Path(__file__).parent.parent,
        )
        assert result.returncode != 0

    def test_listing1_walkthrough_runs(self):
        result = subprocess.run(
            [sys.executable, "examples/listing1_walkthrough.py", "8", "8"],
            capture_output=True, text=True, timeout=300,
            cwd=Path(__file__).parent.parent,
        )
        assert result.returncode == 0, result.stderr
        assert "SAP" in result.stdout
