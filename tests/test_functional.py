"""Tests for the fast functional evaluation mode."""

from repro.composite import CompositeConfig, CompositePredictor
from repro.harness.functional import run_functional
from repro.pipeline.vp import SingleComponentAdapter
from repro.predictors import make_component
from repro.workloads import generate_trace


def _composite(per=256):
    return CompositePredictor(
        CompositeConfig(epoch_instructions=1000).homogeneous(per)
    )


class TestFunctionalRun:
    def test_counts_consistent(self):
        trace = generate_trace("coremark", 8000)
        result = run_functional(trace, _composite())
        assert result.loads == trace.stats().predictable_loads
        assert result.predicted_loads <= result.loads
        assert result.correct_predictions <= result.predicted_loads
        assert sum(result.confident_histogram) == result.loads

    def test_accuracy_high(self):
        trace = generate_trace("coremark", 10_000)
        result = run_functional(trace, _composite())
        assert result.accuracy > 0.98

    def test_no_store_conflicts_in_functional_mode(self):
        """Functional probes see all older stores, so address
        predictors validate against fresh data: the hot_flag pattern
        that mispredicts in the timing model is correct here."""
        trace = generate_trace("v8", 10_000)
        sap = SingleComponentAdapter(make_component("sap", 1024))
        result = run_functional(trace, sap)
        assert result.accuracy > 0.97

    def test_deterministic(self):
        trace = generate_trace("mcf", 6000)
        a = run_functional(trace, _composite())
        b = run_functional(trace, _composite())
        assert a.predicted_loads == b.predicted_loads
        assert a.confident_histogram == b.confident_histogram

    def test_functional_matches_timing_coverage_roughly(self):
        """Coverage agrees with the timing model within a few points
        (timing adds in-flight effects and training delay)."""
        from repro.pipeline import simulate

        trace = generate_trace("coremark", 10_000)
        functional = run_functional(trace, _composite())
        timing = simulate(trace, _composite())
        assert abs(functional.coverage - timing.coverage) < 0.25

    def test_per_component_stats_present(self):
        trace = generate_trace("linpack", 8000)
        result = run_functional(trace, _composite())
        assert "sap" in result.per_component_confident
        assert result.per_component_correct.get("sap", 0) <= \
            result.per_component_confident["sap"]
