"""Tests for the columnar trace representation (repro.isa.columns).

The struct-of-arrays layout must be a lossless encoding of the
object-based instruction stream: pack -> materialize is exact, the
byte-buffer round trip is exact, and every structural invariant the
trace store relies on is enforced by ``from_buffers``.
"""

import pytest

from repro.isa.columns import (
    FLAG_IS_CALL,
    FLAG_NO_PREDICT,
    FLAG_PREDICTABLE,
    FLAG_TAKEN,
    TraceColumns,
)
from repro.isa.instruction import Instruction, OpClass, REG_NONE
from repro.workloads.generator import clear_trace_caches, generate_trace


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_trace_caches()
    yield
    clear_trace_caches()


def sample_instructions():
    return [
        Instruction(pc=0x1000, op=OpClass.INT_ALU, dest=3, srcs=(1, 2)),
        Instruction(
            pc=0x1004, op=OpClass.LOAD, dest=4, srcs=(3,),
            addr=0x8000, size=8, value=0xFFFF_FFFF_FFFF_FFFF,
            kernel="scan",
        ),
        Instruction(
            pc=0x1008, op=OpClass.LOAD, dest=5, srcs=(3,),
            addr=0x8008, size=4, value=7, no_predict=True,
        ),
        Instruction(
            pc=0x100C, op=OpClass.STORE, dest=REG_NONE, srcs=(4, 5),
            addr=0x9000, size=8, value=123,
        ),
        Instruction(
            pc=0x1010, op=OpClass.BRANCH_COND, dest=REG_NONE, srcs=(5,),
            taken=True, target=0x1000,
        ),
        Instruction(
            pc=0x1014, op=OpClass.BRANCH_DIRECT, dest=REG_NONE, srcs=(),
            taken=True, target=0x2000, is_call=True, kernel="scan",
        ),
        Instruction(pc=0x2000, op=OpClass.NOP, dest=REG_NONE, srcs=()),
        Instruction(
            pc=0x2004, op=OpClass.BRANCH_RETURN, dest=REG_NONE, srcs=(),
            taken=True, target=0x1018,
        ),
    ]


class TestRoundTrip:
    def test_materialize_is_exact(self):
        insts = sample_instructions()
        cols = TraceColumns.from_instructions(insts)
        assert cols.materialize() == insts

    def test_generated_workload_roundtrip(self):
        trace = generate_trace("mcf", 2000, seed=1)
        cols = trace.columns
        assert cols is not None
        assert cols.materialize() == trace.instructions

    def test_len_matches(self):
        insts = sample_instructions()
        assert len(TraceColumns.from_instructions(insts)) == len(insts)

    def test_flags_encode_instruction_booleans(self):
        cols = TraceColumns.from_instructions(sample_instructions())
        assert cols.flags[1] & FLAG_PREDICTABLE
        assert cols.flags[2] & FLAG_NO_PREDICT
        assert not (cols.flags[2] & FLAG_PREDICTABLE)
        assert cols.flags[4] & FLAG_TAKEN
        assert cols.flags[5] & FLAG_IS_CALL

    def test_kernel_tags_interned(self):
        cols = TraceColumns.from_instructions(sample_instructions())
        mats = cols.materialize()
        assert mats[1].kernel == "scan"
        assert mats[5].kernel == "scan"
        assert mats[0].kernel == ""


class TestBufferSerialization:
    def test_buffer_roundtrip_is_exact(self):
        insts = sample_instructions()
        cols = TraceColumns.from_instructions(insts)
        meta, buffers = cols.to_buffers()
        rebuilt = TraceColumns.from_buffers(meta, buffers)
        assert rebuilt.materialize() == insts

    def test_meta_counts_and_sizes(self):
        cols = TraceColumns.from_instructions(sample_instructions())
        meta, buffers = cols.to_buffers()
        assert meta["count"] == len(cols)
        for desc, buf in zip(meta["columns"], buffers):
            assert desc["bytes"] == len(buf)

    def test_truncated_buffer_rejected(self):
        cols = TraceColumns.from_instructions(sample_instructions())
        meta, buffers = cols.to_buffers()
        buffers[0] = buffers[0][:-1]
        with pytest.raises(ValueError):
            TraceColumns.from_buffers(meta, buffers)

    def test_wrong_itemsize_rejected(self):
        cols = TraceColumns.from_instructions(sample_instructions())
        meta, buffers = cols.to_buffers()
        meta["columns"][0]["itemsize"] = 2
        with pytest.raises(ValueError):
            TraceColumns.from_buffers(meta, buffers)

    def test_inconsistent_csr_rejected(self):
        cols = TraceColumns.from_instructions(sample_instructions())
        meta, buffers = cols.to_buffers()
        names = [d["name"] for d in meta["columns"]]
        idx = names.index("src_regs")
        buffers[idx] = buffers[idx] + buffers[idx][:1]
        meta["columns"][idx]["bytes"] += 1
        meta["columns"][idx]["items"] += 1
        with pytest.raises(ValueError):
            TraceColumns.from_buffers(meta, buffers)


class TestValidation:
    def test_out_of_range_value_rejected(self):
        bad = [Instruction(
            pc=0x1000, op=OpClass.LOAD, dest=1, srcs=(),
            addr=0x8000, size=8, value=1 << 64,
        )]
        with pytest.raises(ValueError):
            TraceColumns.from_instructions(bad)

    def test_out_of_range_target_rejected(self):
        bad = [Instruction(
            pc=0x1000, op=OpClass.BRANCH_DIRECT, dest=REG_NONE, srcs=(),
            taken=True, target=1 << 64,
        )]
        with pytest.raises(ValueError):
            TraceColumns.from_instructions(bad)
