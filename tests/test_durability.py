"""Durability-layer tests: WAL format, checkpoints, replay recovery.

The acceptance-critical contracts live here: a torn WAL tail (tested
at *every* byte boundary of the final record) never loses an earlier
acknowledged record, a corrupt checkpoint falls back to full replay,
and a recovered session is bit-exact against an uninterrupted
reference for several predictor families.
"""

import pytest

from repro.serve.durability import (
    DurabilityManager,
    decode_line,
    encode_record,
    load_checkpoint,
    scan_wal_file,
    write_checkpoint,
)
from repro.serve.server import PredictionServer, ServerConfig
from repro.serve.session import (
    PredictorSession,
    SeqTracker,
    SessionError,
    apply_events,
)

#: Predictor families the replay-equivalence matrix covers.
SPECS = [
    ("lvp", {"kind": "component", "name": "lvp", "entries": 64}),
    ("composite", {"kind": "composite", "entries": 64}),
    ("eves-8kb", {"kind": "eves", "variant": "8kb"}),
]


def make_events(n_loads: int = 30, base: int = 0x1000) -> list[dict]:
    """A deterministic little instruction stream exercising every kind."""
    events = []
    for i in range(n_loads):
        pc = base + (i % 7) * 4
        addr = 0x8000 + (i % 5) * 8
        value = (i * 11) % 97
        events.append({"k": "s", "pc": pc + 1, "addr": addr, "size": 8,
                       "value": value})
        events.append({"k": "l", "pc": pc, "addr": addr, "size": 8,
                       "value": value, "pred": True})
        if i % 3 == 0:
            events.append({"k": "b", "pc": pc + 2, "taken": bool(i & 1),
                           "cond": True})
        if i % 4 == 0:
            events.append({"k": "t", "n": 3})
    return events


def chunked(events: list[dict], size: int) -> list[list[dict]]:
    return [events[i:i + size] for i in range(0, len(events), size)]


def reference_snapshots(spec, chunks) -> list[dict]:
    """Uninterrupted ground truth: the snapshot after each chunk."""
    session = PredictorSession(spec, session_id="d1")
    snapshots = []
    for chunk in chunks:
        apply_events(session, chunk)
        snapshots.append(session.snapshot())
    return snapshots


def durable_server(tmp_path, **overrides) -> PredictionServer:
    config = ServerConfig(
        data_dir=str(tmp_path / "state"),
        fsync_interval=0.0,
        checkpoint_every=overrides.pop("checkpoint_every", 10_000),
        **overrides,
    )
    return PredictionServer(config)


def drive(server, session_id, spec, chunks, start_seq=2):
    """Durable open + one seq-stamped apply per chunk."""
    opened = server.execute(
        "open", {"session": session_id, "spec": spec, "durable": True}
    )
    results = []
    seq = start_seq
    for chunk in chunks:
        results.append(server.execute(
            "apply", {"session": session_id, "seq": seq, "events": chunk}
        ))
        seq += 1
    return opened, results, seq


class TestWalRecordFormat:
    def test_roundtrip(self):
        record = {"seq": 7, "op": "apply", "body": {"events": [1, 2]}}
        assert decode_line(encode_record(record)) == record

    def test_rejects_corruption(self):
        line = encode_record({"seq": 1, "op": "train", "body": {}})
        assert decode_line(line[:-1]) is None  # no newline (torn)
        assert decode_line(line[:9]) is None  # too short
        flipped = bytes([line[0] ^ 0x01]) + line[1:]
        assert decode_line(flipped) is None  # CRC mismatch
        payload = line[9:-1]
        nospace = line[:8] + b"x" + payload + b"\n"
        assert decode_line(nospace) is None  # malformed separator
        assert decode_line(b"not a wal line at all\n") is None

    def test_rejects_non_dict_json(self):
        from zlib import crc32
        raw = b"[1,2,3]"
        line = b"%08x " % crc32(raw) + raw + b"\n"
        assert decode_line(line) is None


class TestScanWalFile:
    def test_intact_file(self, tmp_path):
        path = tmp_path / "wal.log"
        lines = [encode_record({"seq": i, "op": "train", "body": {}})
                 for i in range(1, 4)]
        path.write_bytes(b"".join(lines))
        records, valid, dropped = scan_wal_file(path)
        assert [r["seq"] for r in records] == [1, 2, 3]
        assert valid == sum(len(line) for line in lines)
        assert dropped == 0

    def test_garbage_tail_truncates(self, tmp_path):
        path = tmp_path / "wal.log"
        good = encode_record({"seq": 1, "op": "train", "body": {}})
        path.write_bytes(good + b"\x00\xff torn garbage")
        records, valid, dropped = scan_wal_file(path)
        assert [r["seq"] for r in records] == [1]
        assert valid == len(good)
        assert dropped == 1

    def test_mid_file_corruption_drops_the_rest(self, tmp_path):
        # Records are only meaningful in unbroken order: a bad line in
        # the middle invalidates everything after it, not just itself.
        path = tmp_path / "wal.log"
        first = encode_record({"seq": 1, "op": "train", "body": {}})
        last = encode_record({"seq": 3, "op": "train", "body": {}})
        path.write_bytes(first + b"00000000 {broken}\n" + last)
        records, valid, dropped = scan_wal_file(path)
        assert [r["seq"] for r in records] == [1]
        assert valid == len(first)
        assert dropped == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert scan_wal_file(tmp_path / "absent.log") == ([], 0, 0)


class TestCheckpointFiles:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "checkpoint.ckpt"
        write_checkpoint(path, {"session": "s", "seq": 9}, b"BLOB" * 100)
        header, blob = load_checkpoint(path)
        assert header["session"] == "s"
        assert header["seq"] == 9
        assert blob == b"BLOB" * 100
        assert not list(tmp_path.glob(".tmp-*"))  # atomic, no droppings

    def test_corrupt_blob_is_evicted(self, tmp_path):
        path = tmp_path / "checkpoint.ckpt"
        write_checkpoint(path, {"seq": 1}, b"state bytes")
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert load_checkpoint(path) is None
        assert not path.exists()  # corrupt file evicted

    def test_truncated_and_foreign_files_rejected(self, tmp_path):
        path = tmp_path / "checkpoint.ckpt"
        write_checkpoint(path, {"seq": 1}, b"x" * 64)
        full = path.read_bytes()
        path.write_bytes(full[:10])
        assert load_checkpoint(path) is None
        path.write_bytes(b"NOTMAGIC" + full[8:])
        assert load_checkpoint(path) is None


class TestSeqTracker:
    def test_new_then_replay(self):
        tracker = SeqTracker()
        assert tracker.check(1) is None
        tracker.record(1, ("ok", {"n": 1}))
        assert tracker.check(1) == ("ok", {"n": 1})
        assert tracker.check(2) is None

    def test_gap_and_bad_values(self):
        tracker = SeqTracker()
        tracker.record(1, ("ok", {}))
        with pytest.raises(SessionError) as excinfo:
            tracker.check(3)
        assert excinfo.value.code == "seq-gap"
        for bad in (0, -1, True, "2", None, 1.5):
            with pytest.raises(SessionError) as excinfo:
                tracker.check(bad)
            assert excinfo.value.code == "bad-seq"

    def test_replay_past_cache_window(self):
        tracker = SeqTracker(cache_size=2)
        for seq in range(1, 5):
            tracker.record(seq, ("ok", {"seq": seq}))
        assert tracker.check(4) == ("ok", {"seq": 4})
        with pytest.raises(SessionError) as excinfo:
            tracker.check(1)
        assert excinfo.value.code == "seq-too-old"

    def test_error_entries_are_cached_too(self):
        tracker = SeqTracker()
        tracker.record(1, ("error", "bad-event", "event 3: nope"))
        assert tracker.check(1) == ("error", "bad-event", "event 3: nope")


class TestRecoveryEquivalence:
    @pytest.mark.parametrize("name,spec", SPECS, ids=[s[0] for s in SPECS])
    def test_full_replay_is_bit_exact(self, tmp_path, name, spec):
        chunks = chunked(make_events(40), 25)
        reference = reference_snapshots(spec, chunks)

        first = durable_server(tmp_path)
        _, results, next_seq = drive(first, "d1", spec, chunks)
        live = first.sessions.get("d1").snapshot()
        assert live == reference[-1]
        first.durability.close_all()  # simulate losing the process

        second = durable_server(tmp_path)
        report = second.recover()
        assert report["recovered_sessions"] == 1
        # The open record replays too: chunks + 1.
        assert report["replayed_records"] == len(chunks) + 1
        recovered = second.sessions.get("d1")
        assert recovered.snapshot() == reference[-1]
        # The replay cache survived: retrying the last apply returns
        # its original response instead of double-executing.
        assert second.execute(
            "apply", {"session": "d1", "seq": next_seq - 1,
                      "events": chunks[-1]},
        ) == results[-1]
        second.durability.close_all()

    @pytest.mark.parametrize("name,spec", SPECS, ids=[s[0] for s in SPECS])
    def test_checkpoint_plus_tail_is_bit_exact(self, tmp_path, name, spec):
        chunks = chunked(make_events(40), 20)
        reference = reference_snapshots(spec, chunks)

        first = durable_server(tmp_path, checkpoint_every=3)
        drive(first, "d1", spec, chunks)
        assert first.durability.stats.checkpoint_count >= 1
        first.durability.close_all()

        second = durable_server(tmp_path, checkpoint_every=3)
        report = second.recover()
        # The checkpoint bounded recovery: only the tail was replayed.
        assert report["replayed_records"] < len(chunks)
        assert second.sessions.get("d1").snapshot() == reference[-1]
        second.durability.close_all()

    def test_resumed_session_keeps_advancing_like_the_reference(
        self, tmp_path
    ):
        spec = SPECS[0][1]
        chunks = chunked(make_events(48), 30)
        half = len(chunks) // 2
        reference = reference_snapshots(spec, chunks)

        first = durable_server(tmp_path)
        drive(first, "d1", spec, chunks[:half])
        first.durability.close_all()

        second = durable_server(tmp_path)
        second.recover()
        opened = second.execute(
            "open", {"session": "d1", "spec": spec, "durable": True}
        )
        assert opened["resumed"] is True
        seq = opened["applied_seq"] + 1
        for chunk in chunks[half:]:
            second.execute(
                "apply", {"session": "d1", "seq": seq, "events": chunk}
            )
            seq += 1
        assert second.sessions.get("d1").snapshot() == reference[-1]
        second.durability.close_all()


class TestTornTailMatrix:
    def test_every_byte_boundary_of_the_final_record(self, tmp_path):
        """Truncate the WAL at every offset inside its last record.

        Whatever byte the crash tore, recovery must land on the state
        after the last *intact* record -- never corrupt state, never a
        lost earlier record.
        """
        spec = SPECS[0][1]
        # Big chunks, then a tiny final one, so the matrix stays small.
        events = make_events(24)
        chunks = chunked(events[:-4], 40) + [events[-4:]]
        reference = reference_snapshots(spec, chunks)

        server = durable_server(tmp_path)
        drive(server, "d1", spec, chunks)
        server.durability.close_all()

        directory = server.durability.session_dir("d1")
        wal_path = sorted(directory.glob("wal-*.log"))[-1]
        origin = wal_path.read_bytes()
        final_start = origin.rfind(b"\n", 0, len(origin) - 1) + 1
        assert final_start > 0

        for cut in range(final_start, len(origin) + 1):
            wal_path.write_bytes(origin[:cut])
            manager = DurabilityManager(
                tmp_path / "state", fsync_interval=0.0
            )
            session = manager.recover("d1")
            torn = cut < len(origin)
            want = reference[-2] if torn else reference[-1]
            assert session.snapshot() == want, f"cut at byte {cut}"
            if torn and cut > final_start:
                assert manager.stats.corrupt_tail_records >= 1
                # The repair truncated the tail back to intact bytes.
                assert wal_path.stat().st_size == final_start
            manager.close_all()

    def test_recovered_tail_segment_accepts_new_appends(self, tmp_path):
        spec = SPECS[0][1]
        chunks = chunked(make_events(30), 30)
        server = durable_server(tmp_path)
        _, _, next_seq = drive(server, "d1", spec, chunks)
        server.durability.close_all()

        # Tear the tail, recover, then keep writing through the
        # repaired segment and recover *again* -- the repaired WAL must
        # itself be a valid WAL.
        directory = server.durability.session_dir("d1")
        wal_path = sorted(directory.glob("wal-*.log"))[-1]
        wal_path.write_bytes(wal_path.read_bytes()[:-7])

        second = durable_server(tmp_path)
        second.recover()
        resumed_seq = second.sessions.get("d1").tracker.applied_seq + 1
        assert resumed_seq == next_seq - 1  # the torn record was lost
        second.execute(
            "apply", {"session": "d1", "seq": resumed_seq,
                      "events": chunks[-1]},
        )
        final = second.sessions.get("d1").snapshot()
        second.durability.close_all()

        third = durable_server(tmp_path)
        third.recover()
        assert third.sessions.get("d1").snapshot() == final
        third.durability.close_all()


class TestCheckpointCorruptionFallback:
    def test_corrupt_checkpoint_falls_back_to_full_replay(self, tmp_path):
        spec = SPECS[1][1]  # composite: the richest state to rebuild
        chunks = chunked(make_events(36), 20)
        reference = reference_snapshots(spec, chunks)

        first = durable_server(tmp_path, checkpoint_every=2)
        drive(first, "d1", spec, chunks)
        first.durability.close_all()

        ckpt = first.durability.session_dir("d1") / "checkpoint.ckpt"
        raw = bytearray(ckpt.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        ckpt.write_bytes(bytes(raw))

        second = durable_server(tmp_path, checkpoint_every=2)
        report = second.recover()
        # Eviction + full replay: every record re-executed, same state.
        assert not ckpt.exists()
        assert report["replayed_records"] == len(chunks) + 1
        assert second.sessions.get("d1").snapshot() == reference[-1]
        second.durability.close_all()


class TestSegmentRotation:
    def test_rotation_and_multi_segment_recovery(self, tmp_path):
        spec = SPECS[0][1]
        chunks = chunked(make_events(120), 12)
        reference = reference_snapshots(spec, chunks)

        first = durable_server(tmp_path, wal_segment_bytes=4096)
        drive(first, "d1", spec, chunks)
        assert first.durability.stats.wal_segments >= 2
        first.durability.close_all()

        directory = first.durability.session_dir("d1")
        segments = sorted(directory.glob("wal-*.log"))
        assert len(segments) >= 2
        # Every segment opens with a header record naming the session.
        for segment in segments:
            records, _, _ = scan_wal_file(segment)
            assert records[0]["op"] == "_segment"
            assert records[0]["session"] == "d1"

        second = durable_server(tmp_path, wal_segment_bytes=4096)
        assert second.durability.scan_ids() == ["d1"]
        second.recover()
        assert second.sessions.get("d1").snapshot() == reference[-1]
        second.durability.close_all()


class TestCloseTombstone:
    def test_close_is_durable_and_retries_are_cached(self, tmp_path):
        spec = SPECS[0][1]
        chunks = chunked(make_events(16), 20)
        server = durable_server(tmp_path)
        _, _, close_seq = drive(server, "d1", spec, chunks)
        closed = server.execute("close", {"session": "d1", "seq": close_seq})
        assert closed["closed"]["session"] == "d1"
        # A retried close returns the tombstoned response verbatim.
        assert server.execute(
            "close", {"session": "d1", "seq": close_seq}
        ) == closed
        # The id is burned: reopening is refused, in this process...
        with pytest.raises(SessionError) as excinfo:
            server.execute(
                "open", {"session": "d1", "spec": spec, "durable": True}
            )
        assert excinfo.value.code == "session-closed"
        server.durability.close_all()

        # ...and in the next one; recovery skips tombstoned sessions.
        second = durable_server(tmp_path)
        report = second.recover()
        assert report["recovered_sessions"] == 0
        assert second.execute(
            "close", {"session": "d1", "seq": close_seq}
        ) == closed
        with pytest.raises(SessionError) as excinfo:
            second.execute(
                "open", {"session": "d1", "spec": spec, "durable": True}
            )
        assert excinfo.value.code == "session-closed"
        second.durability.close_all()

    def test_logged_close_without_tombstone_finishes_the_close(
        self, tmp_path
    ):
        """Crash between the WAL close record and the tombstone write."""
        spec = SPECS[0][1]
        chunks = chunked(make_events(16), 20)
        server = durable_server(tmp_path)
        _, _, close_seq = drive(server, "d1", spec, chunks)
        handle = server.durability.handle("d1")
        # Append the close record the way the live path would, then
        # "crash" before close executes or the tombstone lands.
        handle.append(close_seq, "close", {})
        server.durability.close_all()

        second = durable_server(tmp_path)
        report = second.recover()
        assert report["recovered_sessions"] == 0
        directory = second.durability.session_dir("d1")
        assert (directory / "closed.json").exists()
        with pytest.raises(SessionError) as excinfo:
            second.execute(
                "open", {"session": "d1", "spec": spec, "durable": True}
            )
        assert excinfo.value.code == "session-closed"
        # The retried close still gets its (replay-regenerated) answer.
        retried = second.execute("close", {"session": "d1", "seq": close_seq})
        assert retried["closed"]["session"] == "d1"
        second.durability.close_all()
