"""Unit and property tests for repro.common.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.bits import (
    bit_length_for,
    fold_bits,
    mask,
    sign_extend,
    truncate,
)


class TestMask:
    def test_small_masks(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(4) == 0xF
        assert mask(64) == (1 << 64) - 1

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)

    @given(st.integers(min_value=0, max_value=128))
    def test_mask_bit_count(self, width):
        assert bin(mask(width)).count("1") == width


class TestTruncate:
    def test_truncates_high_bits(self):
        assert truncate(0x1FF, 8) == 0xFF

    @given(st.integers(min_value=0), st.integers(min_value=1, max_value=64))
    def test_result_fits_width(self, value, width):
        assert 0 <= truncate(value, width) < (1 << width)

    @given(st.integers(min_value=0, max_value=2**32),
           st.integers(min_value=33, max_value=64))
    def test_identity_when_value_fits(self, value, width):
        assert truncate(value, width) == value


class TestSignExtend:
    def test_negative_one(self):
        assert sign_extend(0b1111111111, 10) == -1

    def test_min_value(self):
        assert sign_extend(1 << 9, 10) == -512

    def test_positive_passthrough(self):
        assert sign_extend(5, 10) == 5

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            sign_extend(1, 0)

    @given(st.integers(min_value=-512, max_value=511))
    def test_roundtrip_through_truncate(self, value):
        assert sign_extend(truncate(value, 10), 10) == value

    @given(st.integers(), st.integers(min_value=1, max_value=64))
    def test_range(self, value, width):
        result = sign_extend(value, width)
        assert -(1 << (width - 1)) <= result < (1 << (width - 1))


class TestFoldBits:
    def test_folds_to_width(self):
        assert fold_bits(0b1010_0101, 4) == 0b1111

    def test_zero(self):
        assert fold_bits(0, 8) == 0

    def test_identity_for_small_values(self):
        assert fold_bits(0b101, 8) == 0b101

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            fold_bits(5, 0)

    def test_rejects_negative_value(self):
        # A negative history would silently fold wrong (Python's >> on
        # negatives never reaches 0), so it must fail loudly instead.
        with pytest.raises(ValueError, match="non-negative"):
            fold_bits(-1, 8)
        with pytest.raises(ValueError, match="-37"):
            fold_bits(-37, 4)

    @given(st.integers(min_value=0), st.integers(min_value=1, max_value=32))
    def test_result_in_range(self, value, width):
        assert 0 <= fold_bits(value, width) < (1 << width)

    @given(st.integers(min_value=0, max_value=2**128),
           st.integers(min_value=1, max_value=32))
    def test_preserves_any_single_bit_flip(self, value, width):
        # Folding is XOR-based: flipping one input bit flips exactly one
        # output bit, so the folded values always differ.
        flipped = value ^ (1 << 5)
        assert fold_bits(value, width) != fold_bits(flipped, width)


class TestBitLengthFor:
    @pytest.mark.parametrize("entries,expected", [
        (1, 0), (2, 1), (64, 6), (1024, 10), (4096, 12),
    ])
    def test_powers_of_two(self, entries, expected):
        assert bit_length_for(entries) == expected

    @pytest.mark.parametrize("bad", [0, -4, 3, 100, 1000])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ValueError):
            bit_length_for(bad)
