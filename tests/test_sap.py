"""Tests for the stride address predictor (SAP)."""

from conftest import make_outcome, make_probe, train_strided

from repro.common.rng import DeterministicRng
from repro.predictors.sap import SapPredictor
from repro.predictors.types import PredictionKind


def _sap(entries=256, seed=0):
    return SapPredictor(entries, DeterministicRng(seed))


class TestStrideDetection:
    def test_cold_no_prediction(self):
        assert _sap().predict(make_probe()) is None

    def test_predicts_next_strided_address(self):
        sap = _sap()
        train_strided(sap, pc=0x1000, base=0x8000, stride=8, times=40)
        prediction = sap.predict(make_probe(pc=0x1000))
        assert prediction is not None
        assert prediction.kind is PredictionKind.ADDRESS
        assert prediction.addr == 0x8000 + 40 * 8
        assert prediction.size == 8

    def test_zero_stride(self):
        """Constant-address loads are stride-0 SAP targets."""
        sap = _sap()
        for _ in range(40):
            sap.train(make_outcome(pc=0x1000, addr=0x9000))
        prediction = sap.predict(make_probe(pc=0x1000))
        assert prediction is not None and prediction.addr == 0x9000

    def test_negative_stride(self):
        sap = _sap()
        train_strided(sap, pc=0x1000, base=0x9000, stride=-16, times=40)
        prediction = sap.predict(make_probe(pc=0x1000))
        assert prediction.addr == 0x9000 - 40 * 16

    def test_warmup_is_about_nine_observations(self):
        """Table IV: effective confidence 9 consecutive observations."""
        sap = _sap(entries=4096, seed=11)
        warmups = []
        for k in range(60):
            pc = 0x20000 + 64 * k
            for i in range(1, 100):
                sap.train(make_outcome(pc=pc, addr=0x8000 + i * 8))
                if sap.predict(make_probe(pc=pc)) is not None:
                    warmups.append(i)
                    break
        mean = sum(warmups) / len(warmups)
        assert 9 * 0.7 < mean < 9 * 1.4


class TestStrideBreaks:
    def test_stride_change_resets(self):
        sap = _sap()
        train_strided(sap, pc=0x1000, base=0x8000, stride=8, times=40)
        sap.train(make_outcome(pc=0x1000, addr=0x100))  # break
        assert sap.predict(make_probe(pc=0x1000)) is None

    def test_retrains_after_break(self):
        sap = _sap()
        train_strided(sap, pc=0x1000, base=0x8000, stride=8, times=40)
        train_strided(sap, pc=0x1000, base=0x20000, stride=4, times=40)
        prediction = sap.predict(make_probe(pc=0x1000))
        assert prediction.addr == 0x20000 + 40 * 4

    def test_large_stride_compares_in_10_bit_domain(self):
        """Strides are stored as 10-bit two's complement; a consistent
        1024-byte stride wraps to 0 and the *prediction* uses the
        wrapped stride (hardware-faithful truncation)."""
        sap = _sap()
        train_strided(sap, pc=0x1000, base=0x8000, stride=1024, times=40)
        prediction = sap.predict(make_probe(pc=0x1000))
        assert prediction is not None
        # Last trained address was base + 39*1024; the wrapped stride of
        # 0 predicts it again (and the prediction will mispredict, which
        # is exactly what 10-bit stride hardware would do).
        assert prediction.addr == 0x8000 + 39 * 1024


class TestInflightCompensation:
    def test_advances_by_inflight_count(self):
        sap = _sap()
        train_strided(sap, pc=0x1000, base=0x8000, stride=8, times=40)
        p0 = sap.predict(make_probe(pc=0x1000, inflight=0))
        p3 = sap.predict(make_probe(pc=0x1000, inflight=3))
        assert p3.addr == p0.addr + 3 * 8


class TestFeedbackHooks:
    def test_invalidate_removes_entry(self):
        sap = _sap()
        train_strided(sap, pc=0x1000, base=0x8000, stride=8, times=40)
        sap.invalidate(make_outcome(pc=0x1000, addr=0x8000))
        assert sap.predict(make_probe(pc=0x1000)) is None

    def test_penalize_resets_confidence_keeps_entry(self):
        sap = _sap()
        for _ in range(40):
            sap.train(make_outcome(pc=0x1000, addr=0x9000))
        sap.penalize(make_outcome(pc=0x1000, addr=0x9000))
        assert sap.predict(make_probe(pc=0x1000)) is None
        # Entry survives: a few more confirmations re-enable prediction.
        for _ in range(40):
            sap.train(make_outcome(pc=0x1000, addr=0x9000))
        assert sap.predict(make_probe(pc=0x1000)) is not None

    def test_penalize_unknown_pc_is_noop(self):
        _sap().penalize(make_outcome(pc=0x7777000))


class TestAccounting:
    def test_storage_bits(self):
        assert _sap(entries=1024).storage_bits() == 1024 * 77

    def test_size_field(self):
        sap = _sap()
        for _ in range(40):
            sap.train(make_outcome(pc=0x1000, addr=0x9000, size=4))
        assert sap.predict(make_probe(pc=0x1000)).size == 4
