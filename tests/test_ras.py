"""Tests for the return address stack."""

import pytest

from repro.branch.ras import ReturnAddressStack


class TestBasicOperation:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_peek(self):
        ras = ReturnAddressStack(4)
        ras.push(0x300)
        assert ras.peek() == 0x300
        assert ras.depth == 1  # peek does not pop

    def test_underflow_returns_zero_and_counts(self):
        ras = ReturnAddressStack(4)
        assert ras.pop() == 0
        assert ras.underflows == 1

    def test_overflow_wraps(self):
        ras = ReturnAddressStack(2)
        ras.push(0x1)
        ras.push(0x2)
        ras.push(0x3)  # overwrites oldest
        assert ras.overflows == 1
        assert ras.pop() == 0x3
        assert ras.pop() == 0x2

    def test_validation(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)

    def test_capacity_and_depth(self):
        ras = ReturnAddressStack(16)
        assert ras.capacity == 16
        for i in range(5):
            ras.push(i)
        assert ras.depth == 5
