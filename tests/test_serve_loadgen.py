"""Load-generator tests: event flattening, percentiles, benchmark lanes.

The end-to-end proof rides here too: a quick ``run_benchmark`` over a
store-backed workload must finish with zero failed requests, zero
protocol errors, and a payload in the shared ``repro-bench/1`` schema.
"""

import pytest

from repro.harness.benchdiff import SCHEMA
from repro.isa.instruction import OpClass
from repro.serve.loadgen import (
    percentile_ns,
    run_benchmark,
    total_failures,
    trace_to_events,
)
from repro.workloads.generator import generate_trace


class TestTraceToEvents:
    def test_events_cover_every_instruction_exactly_once(self):
        trace = generate_trace("coremark", 3000)
        events = trace_to_events(trace)
        explicit = sum(1 for e in events if e["k"] != "t")
        ticked = sum(e["n"] for e in events if e["k"] == "t")
        assert explicit + ticked == len(trace)

    def test_event_kinds_match_opclasses(self):
        trace = generate_trace("coremark", 3000)
        events = trace_to_events(trace)
        loads = sum(
            1 for i in trace.instructions if i.op is OpClass.LOAD
        )
        stores = sum(
            1 for i in trace.instructions if i.op is OpClass.STORE
        )
        branches = sum(
            1 for i in trace.instructions if i.op.is_branch
        )
        assert sum(1 for e in events if e["k"] == "l") == loads
        assert sum(1 for e in events if e["k"] == "s") == stores
        assert sum(1 for e in events if e["k"] == "b") == branches

    def test_tick_runs_are_coalesced(self):
        trace = generate_trace("coremark", 3000)
        events = trace_to_events(trace)
        for first, second in zip(events, events[1:]):
            assert not (first["k"] == "t" and second["k"] == "t"), \
                "adjacent tick events should have been merged"


class TestPercentiles:
    def test_empty_is_zero(self):
        assert percentile_ns([], 0.5) == 0

    def test_nearest_rank_on_known_list(self):
        ordered = list(range(1, 101))  # 1..100
        assert percentile_ns(ordered, 0.50) == 50
        assert percentile_ns(ordered, 0.95) == 95
        assert percentile_ns(ordered, 0.99) == 99
        assert percentile_ns(ordered, 1.0) == 100

    def test_single_sample(self):
        assert percentile_ns([7], 0.99) == 7

    def test_small_samples_clamp_to_max(self):
        # p99 of fewer than 100 samples must read the max element --
        # never index past the end, never collapse toward p95.
        for n in (1, 2, 5, 50, 99):
            ordered = list(range(1, n + 1))
            assert percentile_ns(ordered, 0.99) == n

    def test_exact_boundary_is_not_float_ceiled(self):
        # Regression: 0.7 * 10 is 7.000000000000001 in binary floating
        # point, so a float ceil read rank 8 where nearest-rank says 7.
        assert percentile_ns(list(range(1, 11)), 0.7) == 7
        assert percentile_ns(list(range(1, 1001)), 0.7) == 700

    def test_property_matches_exact_nearest_rank(self):
        # Nearest-rank definition, computed in exact rational
        # arithmetic: rank = ceil(n * p), clamped to [1, n].
        import math
        from fractions import Fraction

        for n in (1, 3, 7, 10, 99, 100, 101, 250):
            ordered = list(range(1, n + 1))
            for percent in range(0, 101):
                fraction = percent / 100
                rank = math.ceil(n * Fraction(percent, 100))
                expected = ordered[min(n, max(1, rank)) - 1]
                assert percentile_ns(ordered, fraction) == expected, (
                    n, percent
                )

    def test_monotonic_in_fraction(self):
        ordered = sorted([3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5])
        values = [percentile_ns(ordered, p / 100) for p in range(101)]
        assert values == sorted(values)
        assert values[-1] == ordered[-1]


class TestTotalFailures:
    def test_sums_failures_across_lanes(self):
        payload = {"benchmarks": {
            "a": {"requests_failed": 1, "stream_errors": 0,
                  "server": {"protocol_errors": 2, "internal_errors": 0}},
            "b": {"requests_failed": 0, "stream_errors": 3,
                  "server": {"protocol_errors": 0, "internal_errors": 4}},
        }}
        assert total_failures(payload) == 10

    def test_empty_payload_is_clean(self):
        assert total_failures({}) == 0


@pytest.mark.slow
class TestBenchmarkEndToEnd:
    def test_quick_benchmark_zero_failures(self, tmp_path, monkeypatch):
        from repro.harness import runner
        from repro.workloads.store import ENV_VAR

        # Store-backed, as the acceptance criterion requires.
        monkeypatch.setenv(ENV_VAR, str(tmp_path / "store"))
        runner.clear_caches()
        try:
            payload = run_benchmark(
                workload="coremark", length=1500, sessions=4,
                events_per_request=64, quick=True,
            )
        finally:
            runner.clear_caches()

        assert payload["schema"] == SCHEMA
        assert payload["suite"] == "serve"
        assert total_failures(payload) == 0

        lanes = payload["benchmarks"]
        assert set(lanes) == {
            "serve_single", "serve_durable", "serve_concurrent4",
            "serve_concurrent4_unbatched",
            "serve_sharded1", "serve_sharded2",  # quick clamps shards to 2
            "serve_sharded1_durable", "serve_standby",
        }
        for lane in lanes.values():
            assert lane["requests_ok"] > 0
            assert lane["requests_failed"] == 0
            assert lane["median_ns"] == lane["p50_ns"] > 0
            assert lane["p50_ns"] <= lane["p95_ns"] <= lane["p99_ns"]
            assert lane["throughput_rps"] > 0
            assert lane["throughput_eps"] > 0
            assert 0.0 <= lane["accuracy"] <= 1.0
            assert lane["server"]["protocol_errors"] == 0
            assert lane["server"]["internal_errors"] == 0
        assert lanes["serve_concurrent4"]["server"]["micro_batching"]
        assert not (
            lanes["serve_concurrent4_unbatched"]["server"]["micro_batching"]
        )
        # Batching actually batched; the comparison lane did not.
        assert lanes["serve_concurrent4"]["server"]["max_batch_seen"] > 1
        assert (
            lanes["serve_concurrent4_unbatched"]["server"]["max_batch_seen"]
            == 1
        )
        # The durable lane write-ahead logged every acknowledged request.
        durable = lanes["serve_durable"]
        assert durable["durable"] is True
        assert not lanes["serve_single"]["durable"]
        wal = durable["server"]["durability"]
        assert wal["wal_appends"] >= durable["requests_ok"]
        assert wal["wal_bytes"] > 0
        # Sharded lanes ran through a real router + worker subprocesses
        # and report tier topology alongside the usual lane fields.
        for name, shards in (("serve_sharded1", 1), ("serve_sharded2", 2)):
            sharded = lanes[name]
            assert sharded["shards"] == shards
            # Durability stays off so the sharded/unsharded ratio
            # isolates compute distribution from WAL cost.
            assert sharded["durable"] is False
            router = sharded["router"]
            assert router["counters"]["forwarded"] > 0
            assert router["counters"]["dropped_connections"] == 0
            assert len(router["shard_sessions"]) == shards
        # Sharding spreads the sessions across workers when there are
        # workers to spread across.
        spread = lanes["serve_sharded2"]["router"]["shard_sessions"]
        assert sum(spread.values()) == 4
        # The standby lane is the durable single-worker tier plus WAL
        # shipping; its baseline lane is the same tier without the
        # standby, so the pair isolates the replication price.
        baseline = lanes["serve_sharded1_durable"]
        standby = lanes["serve_standby"]
        assert baseline["durable"] is True and baseline["standbys"] == 0
        assert standby["durable"] is True and standby["standbys"] == 1
        # environment.cpus makes the scaling ratio interpretable: on a
        # single-core runner sharding cannot (and must not pretend to)
        # beat one worker.
        assert payload["environment"]["cpus"] >= 1
        comparison = payload["comparison"]
        assert comparison["micro_batching_throughput_speedup"] is not None
        assert comparison["micro_batching_p50_speedup"] is not None
        assert comparison["durability_p50_overhead"] is not None
        assert comparison["durability_throughput_cost"] is not None
        assert comparison["sharded_scaling_throughput"] > 0
        assert comparison["sharded_scaling_p99_ratio"] > 0
        assert comparison["router_overhead_throughput"] > 0
        assert comparison["standby_shipping_overhead_throughput"] > 0
        assert comparison["standby_shipping_p50_overhead"] > 0
