"""Tests for the attribution tooling."""

from repro.composite import CompositeConfig, CompositePredictor
from repro.harness.attribution import attribute
from repro.pipeline.vp import SingleComponentAdapter
from repro.predictors import make_component
from repro.workloads import generate_trace


def _composite():
    return CompositePredictor(
        CompositeConfig(epoch_instructions=1000).homogeneous(256)
    )


class TestAttribution:
    def test_counts_reconcile_with_result(self):
        trace = generate_trace("coremark", 8000)
        attribution = attribute(trace, _composite())
        result = attribution.result
        chosen = sum(attribution.used_correct.values()) + sum(
            attribution.used_incorrect.values()
        )
        # Chosen predictions = forwarded ones + pipeline-level drops
        # (probe misses, store conflicts, full queues).
        assert chosen == (
            result.predicted_loads + result.dropped_probe_misses
            + result.dropped_store_conflicts + result.dropped_queue_full
        )
        assert sum(attribution.used_correct.values()) >= \
            result.correct_predictions

    def test_loads_by_kernel_covers_all_predictable(self):
        trace = generate_trace("coremark", 8000)
        attribution = attribute(trace, _composite())
        assert sum(attribution.loads_by_kernel.values()) == \
            trace.stats().predictable_loads

    def test_coverage_by_kernel_bounds(self):
        trace = generate_trace("mcf", 8000)
        attribution = attribute(trace, _composite())
        for kernel, coverage in attribution.coverage_by_kernel().items():
            assert 0.0 <= coverage <= 1.0, kernel

    def test_kernel_attribution_matches_design(self):
        """Sanity: SAP owns strided loads; pointer chases stay uncovered."""
        trace = generate_trace("linpack", 12_000)
        attribution = attribute(trace, _composite())
        coverage = attribution.coverage_by_kernel()
        if "strided_sum" in coverage and "pointer_chase" in coverage:
            assert coverage["strided_sum"] > coverage["pointer_chase"]

    def test_accuracy_by_component(self):
        trace = generate_trace("sunspider", 8000)
        adapter = SingleComponentAdapter(make_component("sap", 1024))
        attribution = attribute(trace, adapter)
        accuracy = attribution.accuracy_by_component()
        if "sap" in accuracy:
            assert 0.9 <= accuracy["sap"] <= 1.0

    def test_top_mispredictors_shape(self):
        trace = generate_trace("v8", 8000)
        attribution = attribute(trace, _composite())
        for (kernel, component), count in attribution.top_mispredictors():
            assert isinstance(kernel, str) and isinstance(component, str)
            assert count > 0
