"""Tests for the EVES baseline (E-Stride + E-VTAGE)."""

from conftest import make_outcome, make_probe

from repro.common.rng import DeterministicRng
from repro.eves.estride import EStridePredictor
from repro.eves.evtage import EVtagePredictor
from repro.eves.eves import EvesConfig, EvesPredictor, eves_8kb, eves_32kb, eves_infinite


class TestEStride:
    def test_predicts_strided_values(self):
        predictor = EStridePredictor(256, DeterministicRng(0))
        for i in range(200):
            predictor.train(make_outcome(pc=0x1000, value=100 + 3 * i))
        prediction = predictor.predict(make_probe(pc=0x1000))
        assert prediction is not None
        assert prediction.value == 100 + 3 * 200

    def test_inflight_compensation(self):
        predictor = EStridePredictor(256, DeterministicRng(0))
        for i in range(200):
            predictor.train(make_outcome(pc=0x1000, value=10 + 2 * i))
        p0 = predictor.predict(make_probe(pc=0x1000, inflight=0))
        p2 = predictor.predict(make_probe(pc=0x1000, inflight=2))
        assert p2.value == p0.value + 2 * 2

    def test_constant_values_are_stride_zero(self):
        predictor = EStridePredictor(256, DeterministicRng(0))
        for _ in range(100):
            predictor.train(make_outcome(pc=0x1000, value=55))
        assert predictor.predict(make_probe(pc=0x1000)).value == 55

    def test_stride_break_resets(self):
        predictor = EStridePredictor(256, DeterministicRng(0))
        for i in range(200):
            predictor.train(make_outcome(pc=0x1000, value=3 * i))
        predictor.train(make_outcome(pc=0x1000, value=999_999))
        assert predictor.predict(make_probe(pc=0x1000)) is None

    def test_random_values_never_confident(self):
        predictor = EStridePredictor(256, DeterministicRng(0))
        rng = DeterministicRng(9, "vals")
        for _ in range(300):
            predictor.train(make_outcome(pc=0x1000,
                                         value=rng.randint(0, 1 << 30)))
        assert predictor.predict(make_probe(pc=0x1000)) is None


class TestEVtage:
    def test_learns_constant_value(self):
        predictor = EVtagePredictor(rng=DeterministicRng(0))
        for _ in range(200):
            predictor.train(make_outcome(pc=0x1000, value=7, direction=0b1))
        assert predictor.predict(make_probe(pc=0x1000, direction=0b1)).value == 7

    def test_context_separation(self):
        predictor = EVtagePredictor(rng=DeterministicRng(0))
        for _ in range(400):
            predictor.train(make_outcome(pc=0x1000, value=5, direction=0b0000))
            predictor.train(make_outcome(pc=0x1000, value=9, direction=0b1111))
        a = predictor.predict(make_probe(pc=0x1000, direction=0b0000))
        b = predictor.predict(make_probe(pc=0x1000, direction=0b1111))
        assert a is not None and b is not None
        assert a.value == 5 and b.value == 9

    def test_storage_accounting(self):
        predictor = EVtagePredictor(base_entries=512, tagged_entries=64,
                                    num_tables=6)
        assert predictor.storage_bits() == 512 * 67 + 6 * 64 * 83


class TestEvesAssembly:
    def test_estride_takes_priority(self):
        eves = EvesPredictor(EvesConfig())
        for i in range(300):
            eves.train(make_outcome(pc=0x1000, value=10 + 5 * i))
        prediction = eves.predict(make_probe(pc=0x1000))
        assert prediction is not None
        assert prediction.value == 10 + 5 * 300  # stride, not last value

    def test_vtage_covers_context_values(self):
        eves = EvesPredictor(EvesConfig())
        for _ in range(400):
            eves.train(make_outcome(pc=0x1000, value=5, direction=0b0000))
            eves.train(make_outcome(pc=0x1000, value=9, direction=0b1111))
        a = eves.predict(make_probe(pc=0x1000, direction=0b0000))
        assert a is not None and a.value == 5

    def test_prediction_labeled_eves(self):
        eves = EvesPredictor()
        for _ in range(300):
            eves.train(make_outcome(pc=0x1000, value=3))
        assert eves.predict(make_probe(pc=0x1000)).component == "eves"


class TestPresets:
    def test_budgets_are_ordered(self):
        small = eves_8kb().storage_bits()
        large = eves_32kb().storage_bits()
        infinite = eves_infinite().storage_bits()
        assert small < large < infinite

    def test_8kb_is_about_8kb(self):
        kib = eves_8kb().storage_kib()
        assert 6 < kib < 11

    def test_32kb_is_about_32kb(self):
        kib = eves_32kb().storage_kib()
        assert 24 < kib < 42
