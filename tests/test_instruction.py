"""Tests for the instruction model."""

import pytest

from repro.isa.instruction import Instruction, OpClass, REG_NONE


class TestOpClass:
    def test_memory_classification(self):
        assert OpClass.LOAD.is_load and OpClass.LOAD.is_memory
        assert OpClass.STORE.is_store and OpClass.STORE.is_memory
        assert not OpClass.INT_ALU.is_memory

    def test_branch_classification(self):
        for op in (OpClass.BRANCH_COND, OpClass.BRANCH_DIRECT,
                   OpClass.BRANCH_INDIRECT, OpClass.BRANCH_RETURN):
            assert op.is_branch
        assert not OpClass.LOAD.is_branch
        assert OpClass.BRANCH_INDIRECT.is_indirect_branch
        assert OpClass.BRANCH_RETURN.is_indirect_branch
        assert not OpClass.BRANCH_COND.is_indirect_branch


class TestInstructionValidation:
    def test_minimal_alu(self):
        inst = Instruction(pc=0x1000, op=OpClass.INT_ALU, dest=3, srcs=(1, 2))
        assert inst.dest == 3 and not inst.is_load

    def test_unaligned_pc_rejected(self):
        with pytest.raises(ValueError):
            Instruction(pc=0x1001, op=OpClass.INT_ALU)

    def test_negative_pc_rejected(self):
        with pytest.raises(ValueError):
            Instruction(pc=-4, op=OpClass.INT_ALU)

    def test_bad_registers_rejected(self):
        with pytest.raises(ValueError):
            Instruction(pc=0x1000, op=OpClass.INT_ALU, dest=31)
        with pytest.raises(ValueError):
            Instruction(pc=0x1000, op=OpClass.INT_ALU, srcs=(40,))

    def test_load_requires_dest_and_size(self):
        with pytest.raises(ValueError):
            Instruction(pc=0x1000, op=OpClass.LOAD, addr=0x10, size=8)
        with pytest.raises(ValueError):
            Instruction(pc=0x1000, op=OpClass.LOAD, dest=1, addr=0x10, size=3)

    def test_store_size_validated(self):
        with pytest.raises(ValueError):
            Instruction(pc=0x1000, op=OpClass.STORE, addr=0x10, size=16)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            Instruction(pc=0x1000, op=OpClass.LOAD, dest=1, addr=-8, size=8)

    def test_predictable_excludes_no_predict(self):
        load = Instruction(pc=0x1000, op=OpClass.LOAD, dest=1, addr=0, size=8)
        atomic = Instruction(
            pc=0x1000, op=OpClass.LOAD, dest=1, addr=0, size=8,
            no_predict=True,
        )
        assert load.predictable
        assert not atomic.predictable

    def test_store_is_not_predictable(self):
        store = Instruction(pc=0x1000, op=OpClass.STORE, addr=0, size=8)
        assert not store.predictable

    def test_kernel_tag_not_compared(self):
        a = Instruction(pc=0x1000, op=OpClass.NOP, kernel="x")
        b = Instruction(pc=0x1000, op=OpClass.NOP, kernel="y")
        assert a == b
