"""Structural tests for the trace generator (copies, mixing, limits)."""

from collections import Counter

from repro.workloads.generator import generate_trace
from repro.workloads.kernels import KERNEL_CLASSES
from repro.workloads.profiles import profile_for


class TestCopies:
    def test_max_copies_declared_sane(self):
        for name, cls in KERNEL_CLASSES.items():
            assert 1 <= cls.max_copies <= 8, name

    def test_context_patterns_capped(self):
        """Context-aware patterns keep few static copies so their
        per-context warm-up fits the trace (docs/workloads.md)."""
        assert KERNEL_CLASSES["context_address"].max_copies == 1
        assert KERNEL_CLASSES["periodic_pattern"].max_copies == 1
        assert KERNEL_CLASSES["hot_flag"].max_copies == 1

    def test_static_footprint_scales_with_kernels(self):
        trace = generate_trace("gcc2k", 20_000)
        stats = trace.stats()
        # Multiple copies of multiple kernels: a real static footprint.
        assert stats.unique_load_pcs >= 15


class TestMixing:
    def test_every_weighted_kernel_appears(self):
        """Each kernel with meaningful weight shows up in a big trace."""
        profile = profile_for("gcc2k")
        trace = generate_trace("gcc2k", 40_000)
        present = {inst.kernel for inst in trace if inst.kernel}
        expected = {
            name for name, weight in profile.kernel_weights.items()
            if weight >= 0.05
        }
        missing = expected - present
        assert not missing

    def test_kernel_shares_roughly_track_weights(self):
        """Instruction share per kernel correlates with its weight."""
        profile = profile_for("equake")
        trace = generate_trace("equake", 40_000)
        counts = Counter(inst.kernel for inst in trace if inst.kernel)
        total_weight = sum(profile.kernel_weights.values())
        strided_share = counts.get("strided_sum", 0) / len(trace)
        strided_weight = profile.kernel_weights["strided_sum"] / total_weight
        # Kernels emit different burst sizes, so allow a wide band.
        assert 0.3 * strided_weight < strided_share < 4.0 * strided_weight

    def test_atomics_present_in_suite(self):
        """Some hot_flag copies use atomic (no-predict) loads."""
        total = no_predict = 0
        for name in ("gcc2k", "mcf", "v8", "splay", "equake", "mpeg2dec",
                     "coremark", "linpack"):
            for inst in generate_trace(name, 20_000):
                if inst.is_load:
                    total += 1
                    no_predict += inst.no_predict
        assert no_predict > 0
        assert no_predict < 0.05 * total  # rare, as in real code
