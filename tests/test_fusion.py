"""Tests for the table fusion controller."""

import pytest

from repro.common.rng import DeterministicRng
from repro.composite.fusion import FusionController
from repro.predictors import COMPONENT_NAMES, make_component


def _components(entries=64):
    rng = DeterministicRng(0)
    return {n: make_component(n, entries, rng) for n in COMPONENT_NAMES}


def _controller(components, epoch=1000, threshold=20.0, observe=2, revert=5,
                grace=0):
    controller = FusionController(
        components, epoch_instructions=epoch, upki_threshold=threshold,
        observe_epochs=observe, revert_epochs=revert,
    )
    # Most tests exercise steady-state classification; the warm-up
    # grace (tested separately) is skipped by default.
    controller._grace_epochs = grace
    return controller


def _feed_epochs(controller, useful, epochs, per_epoch=100):
    """Run epochs where only the ``useful`` components hit the threshold."""
    for _ in range(epochs):
        for name in useful:
            for _ in range(per_epoch):
                controller.note_used_prediction(name)
        controller.end_epoch()


class TestClassification:
    def test_fuses_after_observation_window(self):
        components = _components()
        controller = _controller(components)
        _feed_epochs(controller, useful=("sap", "cvp", "cap"), epochs=2)
        assert controller.state.fused
        assert controller.state.donors == ("lvp",)
        assert set(controller.state.receivers) == {"sap", "cvp", "cap"}

    def test_single_donor_goes_to_top_receiver(self):
        components = _components()
        controller = _controller(components)
        for _ in range(2):
            for name, count in (("sap", 500), ("cvp", 100), ("cap", 90)):
                for _ in range(count):
                    controller.note_used_prediction(name)
            controller.end_epoch()
        assert controller.state.grants == {"sap": 1}
        assert components["sap"].total_entries == 128  # one extra bank

    def test_three_donors_one_receiver(self):
        components = _components()
        controller = _controller(components)
        _feed_epochs(controller, useful=("sap",), epochs=2)
        assert controller.state.grants == {"sap": 3}
        assert components["sap"].total_entries == 64 * 4

    def test_two_donors_two_receivers(self):
        components = _components()
        controller = _controller(components)
        _feed_epochs(controller, useful=("sap", "lvp"), epochs=2)
        assert set(controller.state.grants) == {"sap", "lvp"}
        assert all(v == 1 for v in controller.state.grants.values())

    def test_no_fusion_when_all_useful(self):
        controller = _controller(_components())
        _feed_epochs(controller, useful=COMPONENT_NAMES, epochs=2)
        assert not controller.state.fused

    def test_no_fusion_when_none_useful(self):
        controller = _controller(_components())
        _feed_epochs(controller, useful=(), epochs=2)
        assert not controller.state.fused


class TestLifecycle:
    def test_donor_flushed_and_silenced(self):
        from conftest import make_outcome, make_probe, train_constant

        components = _components(entries=256)
        lvp = components["lvp"]
        train_constant(lvp, pc=0x1000, value=7, times=300)
        assert lvp.predict(make_probe(pc=0x1000)) is not None
        controller = _controller(components)
        _feed_epochs(controller, useful=("sap", "cvp", "cap"), epochs=2)
        assert controller.is_donor("lvp")
        assert lvp.predict(make_probe(pc=0x1000)) is None  # flushed

    def test_reversion_after_m_epochs(self):
        components = _components()
        controller = _controller(components, observe=2, revert=5)
        _feed_epochs(controller, useful=("sap",), epochs=2)
        assert controller.state.fused
        _feed_epochs(controller, useful=("sap",), epochs=5)
        assert not controller.state.fused
        assert components["sap"].total_entries == 64
        assert controller.state.reversions_performed == 1

    def test_refusion_after_reversion(self):
        components = _components()
        controller = _controller(components, observe=2, revert=5)
        _feed_epochs(controller, useful=("sap",), epochs=2)   # fuse
        _feed_epochs(controller, useful=("sap",), epochs=5)   # revert
        _feed_epochs(controller, useful=("sap",), epochs=2)   # fuse again
        assert controller.state.fused
        assert controller.state.fusions_performed == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            _controller(_components(), observe=3, revert=3)

    def test_warmup_grace_defers_classification(self):
        """No fusion decisions while components are still warming."""
        controller = _controller(_components(), observe=2, grace=2)
        _feed_epochs(controller, useful=("sap",), epochs=2)  # grace
        assert not controller.state.fused
        _feed_epochs(controller, useful=("sap",), epochs=2)  # observed
        assert controller.state.fused
