"""Tests for the context-aware address predictor (CAP / DLVP)."""

from conftest import make_outcome, make_probe

from repro.common.rng import DeterministicRng
from repro.predictors.cap import CapPredictor
from repro.predictors.types import PredictionKind


def _cap(entries=256, seed=0):
    return CapPredictor(entries, DeterministicRng(seed))


class TestContextAddresses:
    def test_cold_no_prediction(self):
        assert _cap().predict(make_probe()) is None

    def test_fast_warmup_four_observations(self):
        """CAP has the lowest confidence bar: ~4 observations."""
        cap = _cap()
        for _ in range(12):
            cap.train(make_outcome(pc=0x1000, addr=0x8000, load_path=0b1010))
        prediction = cap.predict(make_probe(pc=0x1000, load_path=0b1010))
        assert prediction is not None
        assert prediction.kind is PredictionKind.ADDRESS
        assert prediction.addr == 0x8000

    def test_path_separates_addresses(self):
        """Same PC, different memory paths, different addresses --
        the call-site disambiguation CAP exists for."""
        cap = _cap()
        for _ in range(12):
            cap.train(make_outcome(pc=0x1000, addr=0x8000, load_path=0b01))
            cap.train(make_outcome(pc=0x1000, addr=0x9000, load_path=0b10))
        assert cap.predict(make_probe(pc=0x1000, load_path=0b01)).addr == 0x8000
        assert cap.predict(make_probe(pc=0x1000, load_path=0b10)).addr == 0x9000

    def test_changing_address_same_path_never_confident(self):
        """The paper's i >= 16 case: path constant, address varies."""
        cap = _cap()
        for i in range(100):
            cap.train(make_outcome(pc=0x1000, addr=0x8000 + 8 * i,
                                   load_path=0b11))
        assert cap.predict(make_probe(pc=0x1000, load_path=0b11)) is None

    def test_address_change_resets_confidence(self):
        cap = _cap()
        for _ in range(12):
            cap.train(make_outcome(pc=0x1000, addr=0x8000, load_path=0b11))
        cap.train(make_outcome(pc=0x1000, addr=0x9000, load_path=0b11))
        assert cap.predict(make_probe(pc=0x1000, load_path=0b11)) is None

    def test_size_change_resets_confidence(self):
        cap = _cap()
        for _ in range(12):
            cap.train(make_outcome(pc=0x1000, addr=0x8000, size=8,
                                   load_path=0b11))
        cap.train(make_outcome(pc=0x1000, addr=0x8000, size=4, load_path=0b11))
        assert cap.predict(make_probe(pc=0x1000, load_path=0b11)) is None


class TestFeedback:
    def test_penalize_resets(self):
        cap = _cap()
        for _ in range(12):
            cap.train(make_outcome(pc=0x1000, addr=0x8000, load_path=0b11))
        cap.penalize(make_outcome(pc=0x1000, addr=0x8000, load_path=0b11))
        assert cap.predict(make_probe(pc=0x1000, load_path=0b11)) is None


class TestAccounting:
    def test_storage_is_67_bits_per_entry(self):
        assert _cap(entries=1024).storage_bits() == 1024 * 67

    def test_context_aware_address_kind(self):
        cap = _cap()
        assert cap.context_aware
        assert cap.kind is PredictionKind.ADDRESS
