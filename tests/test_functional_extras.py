"""Additional functional-mode tests: disagreement metric, epochs, seeds."""

from repro.composite import CompositeConfig, CompositePredictor
from repro.harness.functional import run_functional
from repro.harness.presets import ExperimentScale
from repro.workloads import generate_trace


def _composite(per=256, **overrides):
    from dataclasses import replace

    config = CompositeConfig(epoch_instructions=1000).homogeneous(per).plain()
    return CompositePredictor(replace(config, **overrides) if overrides else config)


class TestDisagreement:
    def test_paper_claim_confident_components_rarely_disagree(self):
        """Section V-A: highly-confident predictors disagree <0.03% of
        the time.  Functional mode (no in-flight store races) is the
        right setting for this number; we allow an order of magnitude
        of slack over the paper's 0.03%."""
        total_multi = 0
        total_disagree = 0
        for wl in ("coremark", "linpack", "mpeg2dec", "sunspider"):
            result = run_functional(
                generate_trace(wl, 15_000), _composite(1024)
            )
            total_multi += result.multi_confident_loads
            total_disagree += result.disagreements
        assert total_multi > 500  # the metric is meaningful
        assert total_disagree / total_multi < 0.01

    def test_disagreement_fraction_bounds(self):
        result = run_functional(generate_trace("v8", 8000), _composite())
        assert 0.0 <= result.disagreement_fraction <= 1.0
        assert result.disagreements <= result.multi_confident_loads


class TestEpochTicks:
    def test_tick_epochs_false_skips_epoch_machinery(self):
        predictor = _composite(accuracy_monitor="m-am")
        fired = []
        original = predictor.monitor.end_epoch
        predictor.monitor.end_epoch = lambda: fired.append(1) or original()
        run_functional(generate_trace("coremark", 5000), predictor,
                       tick_epochs=False)
        assert fired == []

    def test_tick_epochs_true_fires(self):
        predictor = _composite(accuracy_monitor="m-am")
        fired = []
        original = predictor.monitor.end_epoch
        predictor.monitor.end_epoch = lambda: fired.append(1) or original()
        run_functional(generate_trace("coremark", 5000), predictor)
        assert len(fired) == 5  # 5000 instructions / 1000-epoch


class TestScaleSeeds:
    def test_runs_cross_product(self):
        scale = ExperimentScale(
            "t", workloads=("a", "b"), trace_length=1000,
            seed=0, extra_seeds=(1, 2),
        )
        assert scale.seeds == (0, 1, 2)
        assert len(scale.runs()) == 6
        assert ("b", 2) in scale.runs()

    def test_default_single_seed(self):
        scale = ExperimentScale("t", ("a",), 1000)
        assert scale.runs() == (("a", 0),)

    def test_seed_changes_functional_results(self):
        a = run_functional(generate_trace("coremark", 6000, seed=0),
                           _composite())
        b = run_functional(generate_trace("coremark", 6000, seed=1),
                           _composite())
        assert a.predicted_loads != b.predicted_loads
