"""Tests for CompositeConfig mechanics."""

import pytest

from repro.composite.config import CompositeConfig, StorageBudget


class TestEntries:
    def test_homogeneous(self):
        config = CompositeConfig().homogeneous(128)
        assert set(config.entries().values()) == {128}
        assert config.is_homogeneous
        assert config.total_entries() == 512

    def test_with_entries(self):
        config = CompositeConfig().with_entries(64, 256, 128, 64)
        assert config.entries() == {
            "lvp": 64, "sap": 256, "cvp": 128, "cap": 64,
        }
        assert not config.is_homogeneous

    def test_extra_components_in_entries(self):
        config = CompositeConfig(
            extra_components=(("lap", 64), ("svp", 32)),
        ).homogeneous(64)
        entries = config.entries()
        assert entries["lap"] == 64 and entries["svp"] == 32
        assert len(entries) == 6

    def test_plain_disables_optimizations(self):
        config = CompositeConfig().plain()
        assert config.accuracy_monitor == "none"
        assert not config.smart_training
        assert not config.table_fusion

    def test_confidence_delta_applied(self):
        from repro.composite import CompositePredictor
        from dataclasses import replace

        base = CompositeConfig(epoch_instructions=1000).homogeneous(64).plain()
        loose = CompositePredictor(replace(base, confidence_delta=-2))
        paper = CompositePredictor(base)
        for name in ("lvp", "sap", "cvp", "cap"):
            assert loose.components[name].confidence_threshold <= \
                paper.components[name].confidence_threshold
            assert loose.components[name].confidence_threshold >= 1

    def test_confidence_delta_clamped(self):
        from repro.composite import CompositePredictor
        from dataclasses import replace

        base = CompositeConfig(epoch_instructions=1000).homogeneous(64).plain()
        very_loose = CompositePredictor(replace(base, confidence_delta=-99))
        assert all(
            c.confidence_threshold == 1
            for c in very_loose.components.values()
        )


class TestStorageBudget:
    def test_totals(self):
        budget = StorageBudget({"lvp": 8192, "sap": 8192})
        assert budget.total_bits == 16384
        assert budget.total_kib == pytest.approx(2.0)
