"""Tests for the context-aware value predictor (CVP)."""

import pytest
from conftest import make_outcome, make_probe

from repro.common.rng import DeterministicRng
from repro.predictors.cvp import CvpPredictor, split_entries
from repro.predictors.types import PredictionKind


def _cvp(entries=1024, seed=0):
    return CvpPredictor(entries, DeterministicRng(seed))


class TestSplit:
    def test_split_is_half_quarter_quarter(self):
        assert split_entries(1024) == (512, 256, 256)
        assert split_entries(64) == (32, 16, 16)

    def test_split_sums_to_total(self):
        for total in (4, 64, 1024, 4096):
            assert sum(split_entries(total)) == total

    def test_rejects_bad_totals(self):
        with pytest.raises(ValueError):
            split_entries(100)
        with pytest.raises(ValueError):
            split_entries(2)


class TestContextLearning:
    def test_same_context_constant_value(self):
        cvp = _cvp()
        for _ in range(60):
            cvp.train(make_outcome(pc=0x1000, value=5, direction=0b10110))
        prediction = cvp.predict(make_probe(pc=0x1000, direction=0b10110))
        assert prediction is not None
        assert prediction.kind is PredictionKind.VALUE
        assert prediction.value == 5

    def test_history_separates_values(self):
        """Different branch histories learn different values for the
        same PC -- the defining CVP capability."""
        cvp = _cvp()
        for _ in range(60):
            cvp.train(make_outcome(pc=0x1000, value=5, direction=0b00000))
            cvp.train(make_outcome(pc=0x1000, value=9, direction=0b11111))
        assert cvp.predict(make_probe(pc=0x1000, direction=0b00000)).value == 5
        assert cvp.predict(make_probe(pc=0x1000, direction=0b11111)).value == 9

    def test_lvp_cannot_do_that(self):
        """Contrast test: alternating values defeat LVP."""
        from repro.predictors.lvp import LvpPredictor

        lvp = LvpPredictor(1024, DeterministicRng(0))
        for _ in range(120):
            lvp.train(make_outcome(pc=0x1000, value=5))
            lvp.train(make_outcome(pc=0x1000, value=9))
        assert lvp.predict(make_probe(pc=0x1000)) is None

    def test_warmup_roughly_sixteen(self):
        cvp = _cvp(entries=4096, seed=5)
        warmups = []
        for k in range(50):
            pc = 0x30000 + 64 * k
            for i in range(1, 200):
                cvp.train(make_outcome(pc=pc, value=3, direction=0b101))
                if cvp.predict(make_probe(pc=pc, direction=0b101)):
                    warmups.append(i)
                    break
        mean = sum(warmups) / len(warmups)
        assert 16 * 0.6 < mean < 16 * 1.6

    def test_value_change_resets(self):
        cvp = _cvp()
        for _ in range(60):
            cvp.train(make_outcome(pc=0x1000, value=5, direction=0b111))
        cvp.train(make_outcome(pc=0x1000, value=6, direction=0b111))
        assert cvp.predict(make_probe(pc=0x1000, direction=0b111)) is None


class TestStructure:
    def test_three_tables(self):
        assert len(_cvp()._tables()) == 3

    def test_storage_is_total_entries_times_81(self):
        assert _cvp(entries=1024).storage_bits() == 1024 * 81

    def test_fusion_banks_apply_to_all_tables(self):
        cvp = _cvp(entries=1024)
        cvp.grant_extra_banks(1)
        assert cvp.total_entries == 2048
        cvp.revoke_extra_banks()
        assert cvp.total_entries == 1024
