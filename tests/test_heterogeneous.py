"""Tests for heterogeneous sizing presets (Table VI)."""

import pytest

from repro.composite.config import CompositeConfig
from repro.composite.heterogeneous import (
    TABLE_VI_CONFIGS,
    candidate_allocations,
    paper_config,
    storage_kib,
)


class TestTableViConfigs:
    def test_every_budget_sums(self):
        for total, allocation in TABLE_VI_CONFIGS.items():
            assert sum(allocation) == total

    def test_paper_storage_matches(self):
        """Paper reports 9.56KB for the 1024-entry homogeneous config."""
        assert storage_kib(256, 256, 256, 256) == pytest.approx(9.56, abs=0.01)

    def test_paper_storage_4096(self):
        assert storage_kib(1024, 1024, 1024, 1024) == pytest.approx(
            38.25, abs=0.1
        )  # paper prints 38.21KB with slightly different rounding

    def test_homogeneous_budgets(self):
        assert TABLE_VI_CONFIGS[4096] == (1024,) * 4
        assert TABLE_VI_CONFIGS[1024] == (256,) * 4


class TestPaperConfig:
    def test_heterogeneous_disables_fusion(self):
        config = paper_config(512)
        assert not config.is_homogeneous
        assert not config.table_fusion

    def test_homogeneous_keeps_fusion(self):
        config = paper_config(1024)
        assert config.is_homogeneous
        assert config.table_fusion

    def test_unknown_budget_rejected(self):
        with pytest.raises(ValueError):
            paper_config(333)

    def test_respects_base_config(self):
        base = CompositeConfig(epoch_instructions=777)
        assert paper_config(1024, base).epoch_instructions == 777


class TestCandidates:
    def test_all_sum_to_budget(self):
        for allocation in candidate_allocations(512):
            assert sum(allocation) == 512

    def test_includes_homogeneous(self):
        assert (128, 128, 128, 128) in candidate_allocations(512)

    def test_zero_means_component_left_out(self):
        candidates = candidate_allocations(512)
        assert any(0 in c for c in candidates)

    def test_cvp_minimum_respected(self):
        for allocation in candidate_allocations(512, sizes=(0, 2, 510, 512)):
            assert allocation[2] == 0 or allocation[2] >= 4
