"""Cross-cutting property-based tests over the predictor stack.

These exercise invariants every predictor must uphold regardless of the
training stream: prediction purity, bounded confidence, tag discipline,
and composite bookkeeping consistency.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_outcome, make_probe

from repro.common.rng import DeterministicRng
from repro.composite import CompositeConfig, CompositePredictor
from repro.predictors import COMPONENT_NAMES, make_component
from repro.predictors.types import PredictionKind

# A small universe of training events keeps table interactions dense.
outcome_strategy = st.tuples(
    st.sampled_from([0x1000, 0x1040, 0x2000]),          # pc
    st.sampled_from([0x8000, 0x8008, 0x9000]),          # addr
    st.sampled_from([1, 7, 42]),                        # value
    st.sampled_from([0, 0b1011, 0b11111]),              # direction history
    st.sampled_from([0, 0b10, 0b1101]),                 # load path
)


def _train_stream(predictor, events):
    for pc, addr, value, direction, load_path in events:
        predictor.train(make_outcome(
            pc=pc, addr=addr, value=value, direction=direction,
            load_path=load_path,
        ))


class TestComponentInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(COMPONENT_NAMES),
           st.lists(outcome_strategy, max_size=120))
    def test_predict_is_pure(self, name, events):
        """predict() never mutates state: repeated probes agree."""
        predictor = make_component(name, 64, DeterministicRng(1))
        _train_stream(predictor, events)
        probe = make_probe(pc=0x1000, direction=0b1011, load_path=0b10)
        assert predictor.predict(probe) == predictor.predict(probe)

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(COMPONENT_NAMES),
           st.lists(outcome_strategy, max_size=120))
    def test_prediction_kind_matches_class(self, name, events):
        predictor = make_component(name, 64, DeterministicRng(2))
        _train_stream(predictor, events)
        for pc, _, _, direction, load_path in events[:20]:
            prediction = predictor.predict(make_probe(
                pc=pc, direction=direction, load_path=load_path,
            ))
            if prediction is not None:
                assert prediction.kind is predictor.kind
                assert prediction.component == predictor.name

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(COMPONENT_NAMES),
           st.lists(outcome_strategy, max_size=120))
    def test_confidence_bounded(self, name, events):
        predictor = make_component(name, 64, DeterministicRng(3))
        _train_stream(predictor, events)
        for table in predictor._tables():
            for entry in table.entries():
                assert 0 <= entry.confidence <= predictor.fpc_vector.maximum

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(COMPONENT_NAMES),
           st.lists(outcome_strategy, max_size=80))
    def test_flush_silences(self, name, events):
        predictor = make_component(name, 64, DeterministicRng(4))
        _train_stream(predictor, events)
        predictor.flush()
        for pc, _, _, direction, load_path in events:
            assert predictor.predict(make_probe(
                pc=pc, direction=direction, load_path=load_path,
            )) is None

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(COMPONENT_NAMES),
           st.lists(outcome_strategy, max_size=80),
           st.integers(min_value=1, max_value=3))
    def test_fusion_banks_roundtrip(self, name, events, banks):
        """Granting and revoking banks preserves the original bank's
        confident predictions."""
        predictor = make_component(name, 64, DeterministicRng(5))
        _train_stream(predictor, events)
        probe = make_probe(pc=0x1000, direction=0b1011, load_path=0b10)
        before = predictor.predict(probe)
        predictor.grant_extra_banks(banks)
        predictor.revoke_extra_banks()
        assert predictor.predict(probe) == before


class TestCompositeInvariants:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(outcome_strategy, min_size=10, max_size=150))
    def test_stats_conservation(self, events):
        composite = CompositePredictor(
            CompositeConfig(epoch_instructions=1000).homogeneous(64).plain()
        )
        for pc, addr, value, direction, load_path in events:
            probe = make_probe(pc=pc, direction=direction,
                               load_path=load_path)
            decision = composite.predict(probe)
            correctness = {}
            for name, prediction in decision.confident.items():
                if prediction.kind is PredictionKind.VALUE:
                    correctness[name] = prediction.value == value
                else:
                    correctness[name] = prediction.addr == addr
            composite.validate_and_train(
                decision,
                make_outcome(pc=pc, addr=addr, value=value,
                             direction=direction, load_path=load_path),
                correctness,
            )
        stats = composite.stats
        assert stats.loads == len(events)
        assert sum(stats.confident_histogram) == stats.loads
        assert stats.predicted_loads == sum(stats.chosen_by.values())
        assert stats.correct_used + stats.incorrect_used == \
            stats.predicted_loads
        for name in COMPONENT_NAMES:
            assert stats.correct_by[name] + stats.incorrect_by[name] == \
                stats.confident_by[name]
