#!/usr/bin/env python3
"""Attribute a predictor's coverage and mispredictions to load patterns.

Uses :mod:`repro.harness.attribution` to answer, for one workload:
which synthesis kernels (load-behaviour families) does each predictor
actually cover, and where do its mispredictions come from?  This is the
per-pattern analysis style of the paper's Sections IV-V.

Usage::

    python examples/attribution_analysis.py [workload]
"""

import sys

from repro.composite import CompositeConfig, CompositePredictor
from repro.harness.attribution import attribute
from repro.harness.formatting import frac, render_table
from repro.pipeline import SingleComponentAdapter
from repro.predictors import COMPONENT_NAMES, make_component
from repro.workloads import generate_trace

LENGTH = 20_000


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    trace = generate_trace(workload, LENGTH)

    print(f"=== per-component coverage by load pattern ({workload})\n")
    kernels = sorted(
        {inst.kernel for inst in trace if inst.is_load and inst.kernel}
    )
    rows = []
    for name in COMPONENT_NAMES:
        adapter = SingleComponentAdapter(make_component(name, 1024))
        attribution = attribute(trace, adapter)
        coverage = attribution.coverage_by_kernel()
        rows.append(
            [name.upper()] + [frac(coverage.get(k, 0.0)) for k in kernels]
        )
    print(render_table(["predictor"] + kernels, rows))

    print("\n=== composite misprediction sources\n")
    composite = CompositePredictor(
        CompositeConfig(epoch_instructions=LENGTH // 12).homogeneous(256)
    )
    attribution = attribute(trace, composite)
    top = attribution.top_mispredictors(8)
    if top:
        print(render_table(
            ["kernel", "component", "mispredictions"],
            [[k, c, n] for (k, c), n in top],
        ))
    else:
        print("no mispredictions recorded")
    print(f"\ncomposite coverage {attribution.result.coverage:.1%}, "
          f"accuracy {attribution.result.accuracy:.2%}")


if __name__ == "__main__":
    main()
