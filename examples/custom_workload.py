#!/usr/bin/env python3
"""Build a custom workload from kernels and evaluate predictors on it.

Shows the extensibility path: compose your own instruction stream from
the kernel library (or hand-built :class:`repro.isa.Instruction` lists)
and run any predictor over it -- the same flow a user would follow to
study a load pattern the built-in suite lacks.
"""

from repro.common.rng import DeterministicRng
from repro.composite import CompositeConfig, CompositePredictor
from repro.isa.trace import Trace
from repro.pipeline import SingleComponentAdapter, simulate
from repro.predictors import make_component
from repro.workloads.builder import ProgramBuilder
from repro.workloads.kernels import (
    ChainedStrideKernel,
    ConstantPoolKernel,
    PeriodicPatternKernel,
)


def build_trace(length: int = 15_000) -> Trace:
    """A hand-mixed workload: constants + a CVP pattern + a load chain."""
    rng = DeterministicRng(2024, "custom")
    builder = ProgramBuilder(rng)
    kernels = [
        ConstantPoolKernel(builder, n_constants=6),
        PeriodicPatternKernel(builder, period=4),
        ChainedStrideKernel(builder, n_elems=256),
    ]
    initial_memory = builder.memory.copy()

    instructions: list = []
    mix = rng.derive("mix")
    while len(instructions) < length:
        kernel = kernels[mix.randint(0, len(kernels))]
        kernel.emit(instructions, 300)
    del instructions[length:]
    return Trace("custom-mix", instructions, seed=2024,
                 initial_memory=initial_memory)


def main() -> None:
    trace = build_trace()
    stats = trace.stats()
    print(f"custom trace: {stats.instructions} instructions, "
          f"{stats.loads} loads, {stats.unique_load_pcs} static loads")

    baseline = simulate(trace)
    print(f"baseline IPC {baseline.ipc:.3f}\n")

    contenders = {
        "lvp-1k": lambda: SingleComponentAdapter(make_component("lvp", 1024)),
        "sap-1k": lambda: SingleComponentAdapter(make_component("sap", 1024)),
        "cvp-1k": lambda: SingleComponentAdapter(make_component("cvp", 1024)),
        "composite-1k": lambda: CompositePredictor(
            CompositeConfig(epoch_instructions=600).homogeneous(256)
        ),
    }
    for label, factory in contenders.items():
        result = simulate(trace, factory())
        print(f"{label:13s} speedup {result.speedup_over(baseline):+7.2%}  "
              f"coverage {result.coverage:5.1%}  "
              f"accuracy {result.accuracy:.2%}")


if __name__ == "__main__":
    main()
