#!/usr/bin/env python3
"""Quickstart: build a composite load value predictor and measure it.

Runs the paper's 9.6KB composite predictor (Table VI's 1024-entry
configuration, all optimizations on) on one synthetic workload, against
the no-prediction baseline.

Usage::

    python examples/quickstart.py [workload] [length]
"""

import sys

from repro.composite import CompositeConfig, CompositePredictor
from repro.pipeline import simulate
from repro.workloads import ALL_WORKLOADS, generate_trace


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 25_000
    if workload not in ALL_WORKLOADS:
        raise SystemExit(
            f"unknown workload {workload!r}; choose from {ALL_WORKLOADS}"
        )

    print(f"generating {length}-instruction trace for {workload!r} ...")
    trace = generate_trace(workload, length)
    stats = trace.stats()
    print(
        f"  {stats.instructions} instructions, {stats.loads} loads "
        f"({stats.load_fraction:.0%}), {stats.unique_load_pcs} static loads"
    )

    print("simulating baseline (no value prediction) ...")
    baseline = simulate(trace)
    print(f"  baseline IPC {baseline.ipc:.3f} over {baseline.cycles} cycles")

    # The paper's 9.6KB design point: 256 entries per component,
    # PC-AM, smart training, and table fusion enabled.
    config = CompositeConfig(
        epoch_instructions=max(500, length // 25)
    ).homogeneous(256)
    predictor = CompositePredictor(config)
    print(f"simulating with {predictor} ...")
    result = simulate(trace, predictor)

    print(f"  IPC        {result.ipc:.3f}")
    print(f"  speedup    {result.speedup_over(baseline):+.2%}")
    print(f"  coverage   {result.coverage:.1%} of predictable loads")
    print(f"  accuracy   {result.accuracy:.2%} of used predictions")
    print(f"  flushes    {result.value_mispredictions}")
    print("per-component predictions used:")
    for name, count in predictor.stats.chosen_by.items():
        print(f"  {name:4s} {count}")


if __name__ == "__main__":
    main()
