#!/usr/bin/env python3
"""Mini design-space exploration: components vs composite vs optimizations.

Reproduces, on a couple of workloads, the arc of the paper's Section V:
individual predictors first (Figure 3), then the plain composite
(Figure 5), then the filters (Figures 6-9).

Usage::

    python examples/design_space.py [entries_per_component]
"""

import sys
from dataclasses import replace

from repro.composite import CompositeConfig, CompositePredictor
from repro.harness.formatting import pct, render_table
from repro.pipeline import SingleComponentAdapter, simulate
from repro.predictors import COMPONENT_NAMES, make_component
from repro.workloads import generate_trace

WORKLOADS = ("mcf", "sunspider", "linpack")
LENGTH = 20_000


def average_speedup(make_predictor) -> float:
    total = 0.0
    for name in WORKLOADS:
        trace = generate_trace(name, LENGTH)
        baseline = simulate(trace)
        result = simulate(trace, make_predictor())
        total += result.speedup_over(baseline)
    return total / len(WORKLOADS)


def main() -> None:
    per = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    epoch = LENGTH // 25
    rows = []

    print(f"workloads: {', '.join(WORKLOADS)} ({LENGTH} instructions each)")
    print(f"entries per component: {per}\n")

    for name in COMPONENT_NAMES:
        gain = average_speedup(
            lambda: SingleComponentAdapter(make_component(name, 4 * per))
        )
        rows.append([f"{name.upper()} alone (4x entries)", pct(gain)])

    base = CompositeConfig(epoch_instructions=epoch).homogeneous(per)
    variants = {
        "composite (no filters)": base.plain(),
        "+ PC-AM": replace(base.plain(), accuracy_monitor="pc-am"),
        "+ smart training": replace(base.plain(), smart_training=True),
        "+ table fusion": replace(base.plain(), table_fusion=True),
        "all optimizations": base,
    }
    for label, config in variants.items():
        gain = average_speedup(lambda: CompositePredictor(config))
        rows.append([label, pct(gain)])

    print(render_table(["design", "avg speedup"], rows))


if __name__ == "__main__":
    main()
