#!/usr/bin/env python3
"""Composite vs EVES, the paper's Figures 11/12 in miniature.

Compares the 9.6KB composite against EVES at 8KB and 32KB on a handful
of workloads, reporting per-workload speedup and coverage plus the
averages the paper's headline claims are about.

Usage::

    python examples/eves_shootout.py [workload ...]
"""

import sys

from repro.composite import CompositeConfig, CompositePredictor
from repro.eves import eves_8kb, eves_32kb
from repro.harness.formatting import frac, pct, render_table
from repro.pipeline import EvesAdapter, simulate
from repro.workloads import generate_trace

LENGTH = 20_000


def main() -> None:
    workloads = sys.argv[1:] or ["mcf", "coremark", "sunspider", "linpack"]
    contenders = {
        "composite 9.6KB": lambda: CompositePredictor(
            CompositeConfig(epoch_instructions=LENGTH // 25).homogeneous(256)
        ),
        "eves 8KB": lambda: EvesAdapter(eves_8kb()),
        "eves 32KB": lambda: EvesAdapter(eves_32kb()),
    }

    rows = []
    sums = {label: [0.0, 0.0] for label in contenders}
    for workload in workloads:
        trace = generate_trace(workload, LENGTH)
        baseline = simulate(trace)
        cells = [workload]
        for label, factory in contenders.items():
            result = simulate(trace, factory())
            speedup = result.speedup_over(baseline)
            cells.append(f"{pct(speedup)} / {frac(result.coverage)}")
            sums[label][0] += speedup
            sums[label][1] += result.coverage
        rows.append(cells)

    n = len(workloads)
    rows.append(
        ["AVERAGE"] + [
            f"{pct(s / n)} / {frac(c / n)}" for s, c in sums.values()
        ]
    )
    print("speedup / coverage")
    print(render_table(["workload", *contenders], rows))
    print(
        "\nPaper headline: the 9.6KB composite delivers >2x the coverage "
        "of EVES (32KB)\nand >50% higher speedup (Figure 11)."
    )


if __name__ == "__main__":
    main()
