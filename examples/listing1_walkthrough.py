#!/usr/bin/env python3
"""Walk through the paper's Listing 1 / Table V with all four predictors.

Replays the memset-then-scan loop nest and reports, for each component
predictor, when it starts predicting the scanned load -- reproducing
the predictor-complementarity argument of Section IV-C:

* SAP locks on within the first outer iteration but retrains every
  time the memset restarts the stride;
* CAP needs a few outer laps to grow confident in the per-iteration
  memory-path contexts, then covers early inner iterations;
* LVP needs ~64 instances of the (always zero) value but then predicts
  from the very first inner iteration;
* CVP is slowest (history warm-up x 16 observations per context).

Usage::

    python examples/listing1_walkthrough.py [outer_m] [inner_n]
"""

import sys

from repro.harness.experiments import table5_listing1
from repro.harness.formatting import format_table5


def main() -> None:
    outer_m = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    inner_n = int(sys.argv[2]) if len(sys.argv) > 2 else 16

    print(
        "for (o = 0; o < M; o++) {\n"
        "    memset(A, 0, N * sizeof(*A));\n"
        "    for (i = 0; i < N; i++)\n"
        "        a += A[i];          // the studied load\n"
        "}\n"
        f"M = {outer_m}, N = {inner_n}\n"
    )
    result = table5_listing1(outer_m=outer_m, inner_n=inner_n)
    print(format_table5(result))
    print(
        "\nReading the table: the entry for (predictor, o) is the first"
        "\ninner iteration whose load was correctly predicted during outer"
        "\niteration o; '-' means the predictor stayed silent.  Compare"
        "\nwith Table V of the paper: complementary warm-up behaviours are"
        "\nwhy a composite predictor outperforms any single component."
    )


if __name__ == "__main__":
    main()
